type t = {
  dir : string;
  events_per_segment : int;
  max_segments : int;
  mutable oc : out_channel option;  (** open segment; None after close *)
  mutable current_path : string;
  mutable current_events : int;
  mutable next_index : int;
  mutable live : string list;  (** closed + open segment paths, oldest first *)
  mutable closed : bool;
}

let segment_prefix = "trace-"
let segment_suffix = ".jsonl"

let is_segment name =
  String.length name > String.length segment_prefix + String.length segment_suffix
  && String.sub name 0 (String.length segment_prefix) = segment_prefix
  && Filename.check_suffix name segment_suffix

let segment_files dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter is_segment
    |> List.sort compare  (* zero-padded indices: lexicographic = numeric *)
    |> List.map (Filename.concat dir)

let segment_path dir index =
  Filename.concat dir (Printf.sprintf "%s%06d%s" segment_prefix index segment_suffix)

(* A failure here must not be swallowed: [open_segment] would fail
   moments later with only the segment file's name, hiding which spill
   directory could not be created (read-only parent, a file squatting
   on the path, ...). Re-raise with the directory in the message.
   Concurrent creation ([EEXIST] between the existence check and
   [mkdir]) is the one benign race, so re-check before failing. *)
let rec mkdir_p dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      raise
        (Sys_error
           (Printf.sprintf "cannot create spill dir %s: not a directory" dir))
  end
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error e ->
      if not (Sys.file_exists dir && Sys.is_directory dir) then
        raise
          (Sys_error (Printf.sprintf "cannot create spill dir %s: %s" dir e))
  end

let open_segment t =
  let path = segment_path t.dir t.next_index in
  t.next_index <- t.next_index + 1;
  t.oc <- Some (open_out path);
  t.current_path <- path;
  t.current_events <- 0;
  t.live <- t.live @ [ path ];
  (* Newest-N retention: drop oldest segments beyond the cap. *)
  let excess = List.length t.live - t.max_segments in
  if excess > 0 then begin
    let rec split n = function
      | x :: rest when n > 0 ->
        let dropped, kept = split (n - 1) rest in
        (x :: dropped, kept)
      | rest -> ([], rest)
    in
    let dropped, kept = split excess t.live in
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) dropped;
    t.live <- kept
  end

let create ?(events_per_segment = 65536) ?(max_segments = 8) ~dir () =
  if events_per_segment <= 0 then
    invalid_arg "Spill.create: events_per_segment must be positive";
  if max_segments <= 0 then
    invalid_arg "Spill.create: max_segments must be positive";
  mkdir_p dir;
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) (segment_files dir);
  let t =
    {
      dir;
      events_per_segment;
      max_segments;
      oc = None;
      current_path = "";
      current_events = 0;
      next_index = 0;
      live = [];
      closed = false;
    }
  in
  open_segment t;
  t

let rotate t =
  (match t.oc with
  | Some oc ->
    flush oc;
    close_out oc;
    t.oc <- None
  | None -> ());
  open_segment t

let append t e =
  if t.closed then invalid_arg "Spill.append: sink is closed";
  if t.current_events >= t.events_per_segment then rotate t;
  match t.oc with
  | None -> assert false
  | Some oc ->
    output_string oc (Json.to_string (Trace.event_to_json e));
    output_char oc '\n';
    t.current_events <- t.current_events + 1

let flush t = match t.oc with Some oc -> flush oc | None -> ()

let close t =
  if not t.closed then begin
    (match t.oc with
    | Some oc ->
      flush t;
      close_out oc;
      t.oc <- None
    | None -> ());
    t.closed <- true
  end

let segments t = t.live

let install t = Trace.set_sink (Some (append t))
let uninstall () = Trace.set_sink None

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  Trace.of_jsonl text

let read_dir dir = List.concat_map read_file (segment_files dir)

(** Bounded spill-to-disk sink for the tracer: size-capped JSONL
    segment files with newest-N retention, so long simulations no
    longer truncate at the in-memory ring's capacity.

    A sink owns a directory and writes events to numbered segment
    files ([trace-000000.jsonl], [trace-000001.jsonl], ...), one JSON
    object per line in {!Trace.to_jsonl} format. When a segment
    reaches [events_per_segment] events it is closed and a new one
    starts; when more than [max_segments] exist the oldest files are
    deleted, so the directory holds at most
    [max_segments * events_per_segment] events — the newest ones, a
    much longer tail than the ring, at a hard disk-space bound.

    {!install} wires the sink into {!Trace.set_sink}; from then on
    every emitted event lands in both the ring and the segments. The
    sink itself never checks {!Runtime.is_enabled} — gating happens at
    the recording call sites, so an installed sink on a disabled
    runtime costs nothing. *)

type t

val mkdir_p : string -> unit
(** [mkdir -p]: create [dir] and any missing parents (mode 0o755).
    Raises [Sys_error] naming the full directory path when creation
    fails — unwritable parent, or a regular file squatting on a path
    component — unlike a bare [Sys.mkdir] whose error names only the
    leaf. Safe under concurrent creation ([EEXIST] races re-check).
    Exposed because it is the named-path recursive mkdir every disk
    sink wants ([--csv] output directories, spill dirs, ...). *)

val create :
  ?events_per_segment:int -> ?max_segments:int -> dir:string -> unit -> t
(** Opens a sink over [dir] (created if missing). Pre-existing
    [trace-*.jsonl] files in [dir] are deleted so a run's segments are
    self-consistent. [events_per_segment] defaults to 65536,
    [max_segments] to 8; both must be positive. Raises [Sys_error]
    naming [dir] when it cannot be created (unwritable parent, or a
    path component is a regular file). *)

val append : t -> Trace.event -> unit
(** Write one event, rotating and pruning as needed. Raises
    [Invalid_argument] on a closed sink. *)

val flush : t -> unit

val close : t -> unit
(** Flush and close the current segment. Idempotent. Appending after
    close raises. *)

val segments : t -> string list
(** Paths of live segment files, oldest first (the open one last). *)

val install : t -> unit
(** [Trace.set_sink (Some (append t))]. *)

val uninstall : unit -> unit
(** [Trace.set_sink None]. *)

val read_dir : string -> Trace.event list
(** Read every [trace-*.jsonl] segment in [dir] in segment order and
    concatenate the events — the spill counterpart of
    {!Trace.events}. Raises [Failure] on malformed segment contents. *)

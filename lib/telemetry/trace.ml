type kind = Span_begin | Span_end | Instant

type event = {
  seq : int;
  time : float;
  name : string;
  kind : kind;
  depth : int;
  attrs : (string * string) list;
}

type span = {
  span_name : string;
  span_attrs : (string * string) list;
  mutable open_ : bool;
}

(* Ring buffer: [next] is the write position, [count] the number of
   valid entries (≤ capacity). *)
let capacity = ref 4096
let ring : event option array ref = ref (Array.make !capacity None)
let next = ref 0
let count = ref 0
let seq = ref 0
let depth = ref 0

let clear () =
  Array.fill !ring 0 (Array.length !ring) None;
  next := 0;
  count := 0;
  seq := 0;
  depth := 0

let set_capacity n =
  if n <= 0 then invalid_arg "Trace.set_capacity: capacity must be positive";
  capacity := n;
  ring := Array.make n None;
  next := 0;
  count := 0

let push e =
  !ring.(!next) <- Some e;
  next := (!next + 1) mod !capacity;
  if !count < !capacity then incr count

(* An optional tap on the event stream (the spill-to-disk sink): every
   emitted event is offered to the sink as well as the ring, so a long
   simulation keeps its full history on disk while the ring stays a
   cheap in-memory tail. *)
let sink : (event -> unit) option ref = ref None

let set_sink f = sink := f

let emit ~time ~name ~kind ~attrs =
  let e = { seq = !seq; time; name; kind; depth = !depth; attrs } in
  push e;
  (match !sink with Some f -> f e | None -> ());
  incr seq

let instant ~time ?(attrs = []) name =
  if Runtime.is_enabled () then emit ~time ~name ~kind:Instant ~attrs

let span_begin ~time ?(attrs = []) name =
  if Runtime.is_enabled () then begin
    emit ~time ~name ~kind:Span_begin ~attrs;
    incr depth;
    { span_name = name; span_attrs = attrs; open_ = true }
  end
  else { span_name = name; span_attrs = attrs; open_ = false }

let span_end ~time span =
  if Runtime.is_enabled () && span.open_ then begin
    span.open_ <- false;
    depth := max 0 (!depth - 1);
    emit ~time ~name:span.span_name ~kind:Span_end ~attrs:span.span_attrs
  end

let events () =
  let cap = !capacity in
  let start = (!next - !count + cap) mod cap in
  List.init !count (fun i ->
      match !ring.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let length () = !count

let kind_letter = function Span_begin -> "B" | Span_end -> "E" | Instant -> "I"

let kind_of_letter = function
  | "B" -> Span_begin
  | "E" -> Span_end
  | "I" -> Instant
  | other -> failwith ("Trace.kind_of_letter: unknown kind " ^ other)

let event_to_json e =
  Json.Obj
    [
      ("seq", Json.Num (float_of_int e.seq));
      ("t", Json.Num e.time);
      ("name", Json.Str e.name);
      ("kind", Json.Str (kind_letter e.kind));
      ("depth", Json.Num (float_of_int e.depth));
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) e.attrs));
    ]

let event_of_json j =
  {
    seq = Json.to_int (Json.member "seq" j);
    time = Json.to_float (Json.member "t" j);
    name = Json.to_str (Json.member "name" j);
    kind = kind_of_letter (Json.to_str (Json.member "kind" j));
    depth = Json.to_int (Json.member "depth" j);
    attrs =
      (match Json.member "attrs" j with
      | Json.Obj fields -> List.map (fun (k, v) -> (k, Json.to_str v)) fields
      | _ -> failwith "Trace.event_of_json: attrs not an object");
  }

let to_jsonl () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_to_json e));
      Buffer.add_char buf '\n')
    (events ());
  Buffer.contents buf

let of_jsonl text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l -> event_of_json (Json.of_string l))

let to_csv () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "seq,time,kind,depth,name,attrs\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%.6f,%s,%d,%s,%s\n" e.seq e.time
           (kind_letter e.kind) e.depth e.name
           (String.concat ";"
              (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) e.attrs))))
    (events ());
  Buffer.contents buf

(** A virtual-time tracer: spans and instant events stamped with the
    simulation clock, collected in a bounded ring buffer.

    Timestamps are supplied by the caller (always [Rm_engine.Sim.now]
    or a snapshot's capture time), never wall clock, so two runs with
    the same seed produce byte-identical traces — determinism the
    test-suite asserts. When the buffer is full the oldest events are
    overwritten; [seq] stays globally increasing so truncation is
    detectable.

    All recording functions are no-ops while {!Runtime.is_enabled} is
    false. *)

type kind = Span_begin | Span_end | Instant

type event = {
  seq : int;  (** global emission order, 0-based *)
  time : float;  (** virtual seconds *)
  name : string;
  kind : kind;
  depth : int;  (** open-span nesting depth at emission *)
  attrs : (string * string) list;
}

type span
(** A handle returned by {!span_begin}, consumed by {!span_end}. *)

val instant : time:float -> ?attrs:(string * string) list -> string -> unit

val span_begin :
  time:float -> ?attrs:(string * string) list -> string -> span

val span_end : time:float -> span -> unit
(** Emits the matching [Span_end] event (same name and attrs as the
    begin). Ending a span twice, or a span begun while telemetry was
    disabled, is a silent no-op. *)

val events : unit -> event list
(** Buffered events, oldest first. *)

val length : unit -> int
val clear : unit -> unit

val set_capacity : int -> unit
(** Resize the ring buffer, discarding current contents. Requires a
    positive capacity. Default 4096. *)

val set_sink : (event -> unit) option -> unit
(** Install (or clear) a tap that receives every emitted event in
    addition to the ring — the hook {!Spill} uses to keep the full
    history of a long simulation on disk while the ring holds only the
    newest [capacity] events. The sink must not record events itself
    (it would recurse). *)

val to_jsonl : unit -> string
(** One JSON object per line:
    [{"seq":..,"t":..,"name":..,"kind":"B|E|I","depth":..,"attrs":{..}}]. *)

val of_jsonl : string -> event list
(** Parse {!to_jsonl} output (blank lines skipped). Raises [Failure]
    on malformed input. *)

val event_to_json : event -> Json.t
val event_of_json : Json.t -> event

val to_csv : unit -> string
(** Header [seq,time,kind,depth,name,attrs]; attrs rendered as
    [k=v] pairs joined with [;]. *)

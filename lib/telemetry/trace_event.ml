let pid = 1

let component_of (e : Trace.event) =
  match String.index_opt e.name '.' with
  | Some i -> String.sub e.name 0 i
  | None -> e.name

let components events =
  List.fold_left
    (fun acc e ->
      let c = component_of e in
      if List.mem c acc then acc else c :: acc)
    [] events
  |> List.rev

let phase (e : Trace.event) =
  match e.kind with
  | Trace.Span_begin -> "B"
  | Trace.Span_end -> "E"
  | Trace.Instant -> "i"

let thread_name_record ~tid name =
  Json.Obj
    [
      ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Num (float_of_int pid));
      ("tid", Json.Num (float_of_int tid));
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let event_record ~tid (e : Trace.event) =
  let base =
    [
      ("name", Json.Str e.name);
      ("ph", Json.Str (phase e));
      ("ts", Json.Num (e.time *. 1e6));
      ("pid", Json.Num (float_of_int pid));
      ("tid", Json.Num (float_of_int tid));
    ]
  in
  let scope =
    match e.kind with Trace.Instant -> [ ("s", Json.Str "t") ] | _ -> []
  in
  let args =
    ("seq", Json.Num (float_of_int e.seq))
    :: List.map (fun (k, v) -> (k, Json.Str v)) e.attrs
  in
  Json.Obj (base @ scope @ [ ("args", Json.Obj args) ])

let to_json events =
  let lanes = components events in
  let tid_of c =
    let rec find i = function
      | [] -> 1
      | x :: _ when x = c -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 1 lanes
  in
  Json.Arr
    (List.mapi (fun i c -> thread_name_record ~tid:(i + 1) c) lanes
    @ List.map (fun e -> event_record ~tid:(tid_of (component_of e)) e) events)

let to_string events = Json.to_string (to_json events) ^ "\n"

let export_buffer () = to_string (Trace.events ())

(** Chrome [trace_event] JSON export for {!Trace} events, so any
    simulation trace opens in Perfetto / [chrome://tracing].

    The export is a pure function over an event list. Virtual time maps
    to the format's microsecond [ts] ([ts = time * 1e6]); every event
    shares one [pid] (the simulated resource manager) and is laned into
    a [tid] per component, where an event's component is its name up to
    the first ['.'] ([sched.job] → [sched]). A [thread_name] metadata
    record per component makes the lanes readable in the UI.

    Span begin/end become phase ["B"]/["E"]; instants become phase
    ["i"] with thread scope. Event attrs are carried in [args], plus
    the global [seq] so truncation stays detectable after export. *)

val pid : int
(** The single process id used for all lanes (1). *)

val components : Trace.event list -> string list
(** Distinct components in first-appearance order — the lane (tid)
    assignment: component [i] gets [tid = i + 1]. *)

val to_json : Trace.event list -> Json.t
(** A JSON array: one [thread_name] metadata object per component
    followed by one object per event with fields
    [name]/[ph]/[ts]/[pid]/[tid]/[args]. *)

val to_string : Trace.event list -> string
(** [Json.to_string] of {!to_json} plus a trailing newline. *)

val export_buffer : unit -> string
(** {!to_string} of the current ring contents ([Trace.events ()]). *)

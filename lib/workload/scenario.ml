module Rng = Rm_stats.Rng

type t = {
  name : string;
  flow_params : Flow_gen.params;
  sample_profile : Rng.t -> Rm_cluster.Node.t -> Node_model.profile;
}

(* Per-node heterogeneity: each node draws its own baseline and spike
   behaviour, so some nodes look like the paper's quiet "node B" and
   others like the spiky "node A". *)
let sample_profile ~load_mu_lo ~load_mu_hi ~spike_rate_lo ~spike_rate_hi
    ~spike_mag_hi ~util_base_lo ~util_base_hi rng (_node : Rm_cluster.Node.t) :
    Node_model.profile =
  {
    load_mu = Rng.uniform rng ~lo:load_mu_lo ~hi:load_mu_hi;
    load_tau = Rng.uniform rng ~lo:600.0 ~hi:2400.0;
    load_sigma = Rng.uniform rng ~lo:0.08 ~hi:0.3;
    spike_rate_per_s = Rng.uniform rng ~lo:spike_rate_lo ~hi:spike_rate_hi;
    spike_magnitude_lo = 0.5;
    spike_magnitude_hi = spike_mag_hi;
    spike_mean_duration_s = Rng.uniform rng ~lo:300.0 ~hi:1800.0;
    diurnal_amplitude = Rng.uniform rng ~lo:0.2 ~hi:0.6;
    diurnal_phase_s = Rng.uniform rng ~lo:0.0 ~hi:86_400.0;
    util_base_pct = Rng.uniform rng ~lo:util_base_lo ~hi:util_base_hi;
    util_sigma_pct = Rng.uniform rng ~lo:2.0 ~hi:6.0;
    mem_used_frac_mu = Rng.uniform rng ~lo:0.18 ~hi:0.32;
    users_mu = Rng.uniform rng ~lo:0.3 ~hi:3.0;
  }

let quiet =
  {
    name = "quiet";
    flow_params =
      { Flow_gen.default with arrival_rate_per_s = 0.015; p_elephant = 0.05 };
    sample_profile =
      sample_profile ~load_mu_lo:0.02 ~load_mu_hi:0.25 ~spike_rate_lo:2e-5
        ~spike_rate_hi:1e-4 ~spike_mag_hi:2.0 ~util_base_lo:3.0
        ~util_base_hi:12.0;
  }

let normal =
  {
    name = "normal";
    flow_params = Flow_gen.default;
    sample_profile =
      sample_profile ~load_mu_lo:0.05 ~load_mu_hi:4.0 ~spike_rate_lo:8e-5
        ~spike_rate_hi:5e-4 ~spike_mag_hi:8.0 ~util_base_lo:6.0
        ~util_base_hi:16.0;
  }

let busy =
  {
    name = "busy";
    flow_params =
      {
        Flow_gen.default with
        arrival_rate_per_s = 0.35;
        p_elephant = 0.3;
        demand_pareto_scale_mb_s = 8.0;
      };
    sample_profile =
      sample_profile ~load_mu_lo:1.5 ~load_mu_hi:6.0 ~spike_rate_lo:4e-4
        ~spike_rate_hi:1.5e-3 ~spike_mag_hi:8.0 ~util_base_lo:35.0
        ~util_base_hi:65.0;
  }

let hotspot ~switch =
  {
    normal with
    name = Printf.sprintf "hotspot%d" switch;
    flow_params =
      {
        Flow_gen.default with
        arrival_rate_per_s = 0.16;
        hotspot = Some (switch, 0.6);
      };
  }

(* Weekend: hardly anyone logged in, light traffic, no diurnal crunch. *)
let weekend =
  {
    name = "weekend";
    flow_params =
      { Flow_gen.default with arrival_rate_per_s = 0.02; p_elephant = 0.25 };
    sample_profile =
      sample_profile ~load_mu_lo:0.01 ~load_mu_hi:0.4 ~spike_rate_lo:1e-5
        ~spike_rate_hi:8e-5 ~spike_mag_hi:3.0 ~util_base_lo:2.0
        ~util_base_hi:10.0;
  }

(* Nightly: interactive use gone, but batch transfers (backups, dataset
   syncs) saturate the network while CPU load stays moderate. *)
let nightly =
  {
    name = "nightly";
    flow_params =
      {
        Flow_gen.default with
        arrival_rate_per_s = 0.1;
        p_elephant = 0.5;
        p_external = 0.55;
        demand_pareto_scale_mb_s = 12.0;
      };
    sample_profile =
      sample_profile ~load_mu_lo:0.2 ~load_mu_hi:2.0 ~spike_rate_lo:2e-5
        ~spike_rate_hi:1e-4 ~spike_mag_hi:4.0 ~util_base_lo:4.0
        ~util_base_hi:14.0;
  }

(* Every name here resolves via [by_name]; "hotspot0" stands in for the
   whole hotspot<N> family (any switch index the topology can validate). *)
let all_names = [ "quiet"; "normal"; "busy"; "weekend"; "nightly"; "hotspot0" ]

let hotspot_prefix = "hotspot"

let parse_hotspot name =
  let plen = String.length hotspot_prefix in
  if String.length name <= plen then None
  else if not (String.starts_with ~prefix:hotspot_prefix name) then None
  else
    let digits = String.sub name plen (String.length name - plen) in
    if String.for_all (fun c -> c >= '0' && c <= '9') digits then
      int_of_string_opt digits
    else None

let by_name name =
  match name with
  | "quiet" -> Some quiet
  | "normal" -> Some normal
  | "busy" -> Some busy
  | "weekend" -> Some weekend
  | "nightly" -> Some nightly
  | _ -> (
    match parse_hotspot name with
    | Some switch -> Some (hotspot ~switch)
    | None -> None)

(** Cluster-wide workload scenarios.

    A scenario bundles the background-traffic parameters with a sampler
    that draws a heterogeneous per-node profile, reproducing the spread
    visible in Fig. 1 (node B "typically has quite low CPU load" while
    others spike; utilization 20–35%; bursty NIC traffic). *)

type t = {
  name : string;
  flow_params : Flow_gen.params;
  sample_profile : Rm_stats.Rng.t -> Rm_cluster.Node.t -> Node_model.profile;
}

val quiet : t
(** Nearly idle cluster: low load everywhere, little traffic. *)

val normal : t
(** The paper's typical shared-cluster day: avg utilization 20–35 %,
    occasional load spikes, moderate background traffic. *)

val busy : t
(** Deadline week: most nodes loaded, heavy traffic; the regime where
    the broker should recommend waiting (§6). *)

val weekend : t
(** Nearly empty building: minimal load and traffic. *)

val nightly : t
(** Batch window: little interactive load, heavy elephant transfers —
    the regime where network awareness matters most relative to load
    awareness. *)

val hotspot : switch:int -> t
(** [normal], plus concentrated traffic on one switch — produces the
    dark bandwidth patches of Fig. 2a. *)

val by_name : string -> t option
(** Lookup among ["quiet"; "normal"; "busy"; "weekend"; "nightly"] and
    ["hotspot<N>"] for any non-negative [N] (e.g. ["hotspot7"]). The
    switch index is validated against the actual topology when the
    scenario is instantiated ({!World.create} raises
    [Invalid_argument] with the valid range). *)

val all_names : string list
(** Every listed name resolves via {!by_name}; ["hotspot0"] represents
    the [hotspot<N>] family. *)

module Rng = Rm_stats.Rng
module Cluster = Rm_cluster.Cluster
module Topology = Rm_cluster.Topology
module Network = Rm_netsim.Network

type job = {
  job_id : int;
  job_load : (int * float) list;
  job_flows : Rm_netsim.Flow.t list;
}

type job_handle = int

type t = {
  cluster : Cluster.t;
  scenario : Scenario.t;
  network : Network.t;
  models : Node_model.t array;
  flows : Flow_gen.t;
  up : bool array;
  mutable jobs : job list;
  mutable next_job_id : int;
  mutable next_flow_id : int;
  mutable now : float;
}

let assemble ~cluster ~scenario ~models ~flows =
  let network = Network.create (Cluster.topology cluster) in
  let t =
    {
      cluster;
      scenario;
      network;
      models;
      flows;
      up = Array.make (Cluster.node_count cluster) true;
      jobs = [];
      next_job_id = 0;
      next_flow_id = 1_000_000;
      now = 0.0;
    }
  in
  (* Materialize the t=0 state so queries before the first tick are sane. *)
  Network.set_flows network (Flow_gen.active_flows flows);
  t

let check_hotspot ~cluster (scenario : Scenario.t) =
  match scenario.flow_params.hotspot with
  | None -> ()
  | Some (switch, _) ->
    let count = Topology.switch_count (Cluster.topology cluster) in
    if switch < 0 || switch >= count then
      invalid_arg
        (Printf.sprintf
           "World.create: scenario %s targets switch %d but the topology has \
            switches 0..%d"
           scenario.name switch (count - 1))

let create ~cluster ~scenario ~seed =
  check_hotspot ~cluster scenario;
  let rng = Rng.create seed in
  let models =
    Array.map
      (fun node ->
        let profile = scenario.Scenario.sample_profile rng node in
        Node_model.create ~rng:(Rng.split rng) ~node ~profile)
      (Cluster.nodes cluster)
  in
  let flows =
    Flow_gen.create ~rng:(Rng.split rng)
      ~node_count:(Cluster.node_count cluster)
      ~params:scenario.Scenario.flow_params
  in
  assemble ~cluster ~scenario ~models ~flows

let create_replay ?(flow_params = Flow_gen.default) ~cluster ~traces ~seed () =
  let traces = Array.of_list traces in
  if Array.length traces <> Cluster.node_count cluster then
    invalid_arg "World.create_replay: one trace per node required";
  let models =
    Array.mapi
      (fun i node -> Node_model.create_replay ~node ~trace:traces.(i))
      (Cluster.nodes cluster)
  in
  let rng = Rng.create seed in
  let flows =
    Flow_gen.create ~rng:(Rng.split rng)
      ~node_count:(Cluster.node_count cluster)
      ~params:flow_params
  in
  let scenario =
    {
      Scenario.name = "replay";
      flow_params;
      sample_profile = (fun _ _ -> invalid_arg "replay scenario has no profiles");
    }
  in
  assemble ~cluster ~scenario ~models ~flows

let cluster t = t.cluster
let network t = t.network
let scenario_name t = t.scenario.Scenario.name
let now t = t.now

let all_flows t =
  Flow_gen.active_flows t.flows
  @ List.concat_map (fun j -> j.job_flows) t.jobs

(* Lenient monotonic: callers on different clocks (monitor daemons on the
   sim, the MPI executor on its own critical path) may race slightly;
   whoever is furthest ahead wins and earlier calls are no-ops. *)
let advance t ~now =
  if now > t.now then begin
    t.now <- now;
    Array.iter (fun m -> Node_model.advance m ~now) t.models;
    let topo = Cluster.topology t.cluster in
    Flow_gen.advance t.flows ~now ~switch_of_node:(Topology.switch_of_node topo);
    Network.set_flows t.network (all_flows t)
  end

let attach t ~sim ~period ~until =
  Rm_engine.Sim.every sim ~period ~until (fun sim ->
      advance t ~now:(Rm_engine.Sim.now sim))

let check_node t node =
  if node < 0 || node >= Array.length t.models then
    invalid_arg "World: node index out of range"

let job_load_on t node =
  List.fold_left
    (fun acc j ->
      List.fold_left
        (fun acc (n, l) -> if n = node then acc +. l else acc)
        acc j.job_load)
    0.0 t.jobs

let cpu_load t ~node =
  check_node t node;
  Node_model.cpu_load t.models.(node) +. job_load_on t node

let cpu_util_pct t ~node =
  check_node t node;
  Node_model.cpu_util_pct t.models.(node)

let mem_used_gb t ~node =
  check_node t node;
  Node_model.mem_used_gb t.models.(node)

let users t ~node =
  check_node t node;
  Node_model.users t.models.(node)

let users_field t i = users t ~node:i

let nic_rate_mb_s t ~node =
  check_node t node;
  Network.nic_rate_mb_s t.network ~node

let background_flow_count t = Flow_gen.active_count t.flows

let register_job t ~load ~flows =
  List.iter (fun (n, l) ->
      check_node t n;
      if l < 0.0 then invalid_arg "World.register_job: negative load") load;
  let job_flows =
    List.map
      (fun (src, dst, demand_mb_s) ->
        let id = t.next_flow_id in
        t.next_flow_id <- t.next_flow_id + 1;
        Rm_netsim.Flow.make ~id ~src ~dst ~demand_mb_s)
      flows
  in
  let job = { job_id = t.next_job_id; job_load = load; job_flows } in
  t.next_job_id <- t.next_job_id + 1;
  t.jobs <- job :: t.jobs;
  Network.set_flows t.network (all_flows t);
  job.job_id

let release_job t handle =
  let before = List.length t.jobs in
  t.jobs <- List.filter (fun j -> j.job_id <> handle) t.jobs;
  if List.length t.jobs <> before then Network.set_flows t.network (all_flows t)

let job_count t = List.length t.jobs

let is_up t ~node =
  check_node t node;
  t.up.(node)

let set_down t ~node =
  check_node t node;
  t.up.(node) <- false

let set_up t ~node =
  check_node t node;
  t.up.(node) <- true

let set_nic_scale t ~node scale =
  check_node t node;
  let link = Topology.access_link (Cluster.topology t.cluster) ~node in
  Network.set_capacity_scale t.network ~link_id:link.Topology.link_id scale

let nic_scale t ~node =
  check_node t node;
  let link = Topology.access_link (Cluster.topology t.cluster) ~node in
  Network.capacity_scale t.network ~link_id:link.Topology.link_id

let up_nodes t =
  let acc = ref [] in
  for i = Array.length t.up - 1 downto 0 do
    if t.up.(i) then acc := i :: !acc
  done;
  !acc

let record_traces t ~hours ~period_s =
  if hours <= 0.0 || period_s <= 0.0 then
    invalid_arg "World.record_traces: non-positive span";
  let n = Array.length t.models in
  let steps = int_of_float (Float.ceil (hours *. 3600.0 /. period_s)) in
  let times = Array.make (steps + 1) 0.0 in
  let load = Array.make_matrix n (steps + 1) 0.0 in
  let util = Array.make_matrix n (steps + 1) 0.0 in
  let mem = Array.make_matrix n (steps + 1) 0.0 in
  let users = Array.make_matrix n (steps + 1) 0.0 in
  let start = t.now in
  for k = 0 to steps do
    let now = start +. (float_of_int k *. period_s) in
    advance t ~now;
    times.(k) <- now;
    for i = 0 to n - 1 do
      load.(i).(k) <- cpu_load t ~node:i;
      util.(i).(k) <- cpu_util_pct t ~node:i;
      mem.(i).(k) <- mem_used_gb t ~node:i;
      users.(i).(k) <- float_of_int (users_field t i)
    done
  done;
  List.init n (fun i ->
      Trace_replay.make_node ~times ~load:load.(i) ~util_pct:util.(i)
        ~mem_used_gb:mem.(i) ~users:users.(i))

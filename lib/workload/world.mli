(** The simulated shared cluster: ground truth for everything dynamic.

    Owns a {!Node_model} per node and a {!Flow_gen} population, pushes
    the live flow set into a {!Rm_netsim.Network}, and advances them all
    in virtual time — either explicitly with {!advance} or on a
    {!Rm_engine.Sim} via {!attach}. The monitor daemons sample this
    truth (with noise); the MPI executor consumes it directly. *)

type t

val create :
  cluster:Rm_cluster.Cluster.t -> scenario:Scenario.t -> seed:int -> t
(** Raises [Invalid_argument] when the scenario targets a hotspot
    switch the topology does not have. *)

val create_replay :
  ?flow_params:Flow_gen.params ->
  cluster:Rm_cluster.Cluster.t ->
  traces:Trace_replay.node_trace list ->
  seed:int ->
  unit ->
  t
(** A world whose node attributes replay recorded traces (one per node,
    in node order) while network traffic stays stochastic under
    [flow_params] (default: {!Flow_gen.default}; the [seed] drives only
    the traffic). Raises [Invalid_argument] on a trace-count mismatch. *)

val record_traces :
  t -> hours:float -> period_s:float -> Trace_replay.node_trace list
(** Advance this world from its current time and sample every node's
    attributes each [period_s] — a recorded scenario that
    {!create_replay} can replay bit-identically at the sample points. *)

val cluster : t -> Rm_cluster.Cluster.t
val network : t -> Rm_netsim.Network.t
val scenario_name : t -> string
val now : t -> float

val advance : t -> now:float -> unit
(** Advance ground truth to absolute time [now]. Calls with [now] at or
    before the current world time are no-ops, so callers on different
    clocks (monitor sim vs. MPI executor) can interleave safely. *)

val attach : t -> sim:Rm_engine.Sim.t -> period:float -> until:float -> unit
(** Schedule periodic {!advance} ticks on the simulation. *)

(** {2 Ground-truth accessors (post-[advance])} *)

val cpu_load : t -> node:int -> float
val cpu_util_pct : t -> node:int -> float
val mem_used_gb : t -> node:int -> float
val users : t -> node:int -> int
val nic_rate_mb_s : t -> node:int -> float
val background_flow_count : t -> int

(** {2 Running-job overlay}

    A running MPI job occupies cores and produces traffic that the rest
    of the cluster (and the monitor daemons) must see. The scheduler
    registers each running job here; its load adds to {!cpu_load} and
    its flows join the background population in the network. *)

type job_handle

val register_job :
  t ->
  load:(int * float) list ->
  flows:(int * Rm_netsim.Flow.endpoint * float) list ->
  job_handle
(** [load] is (node, runnable processes); [flows] is
    (src, dst, demand MB/s). Takes effect immediately. *)

val release_job : t -> job_handle -> unit
(** Idempotent. *)

val job_count : t -> int

(** {2 Node liveness (for LivehostsD and failure injection)} *)

val is_up : t -> node:int -> bool
val set_down : t -> node:int -> unit
val set_up : t -> node:int -> unit
val up_nodes : t -> int list

val set_nic_scale : t -> node:int -> float -> unit
(** Degrade (or restore, with [1.0]) the node's access-link capacity to
    [scale × nominal] — the flaky-NIC fault. Probes and the fair-share
    model see the reduced capacity immediately. *)

val nic_scale : t -> node:int -> float

(* Aggregated test entry point: one alcotest suite per library. *)

let () =
  Alcotest.run "rm"
    (Test_stats.suites @ Test_engine.suites @ Test_cluster.suites
   @ Test_netsim.suites @ Test_workload.suites @ Test_monitor.suites
   @ Test_core.suites @ Test_mpisim.suites @ Test_apps.suites
   @ Test_madm.suites @ Test_replay.suites @ Test_synthetic.suites @ Test_edge.suites @ Test_coverage.suites @ Test_forecast.suites @ Test_sched.suites @ Test_malleable.suites @ Test_faults.suites @ Test_experiments.suites @ Test_telemetry.suites @ Test_service.suites)

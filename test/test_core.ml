(* Tests for rm_core: SAW pipeline, Eq. 1-4, Algorithms 1-2, the four
   policies, brute-force comparison, broker. Fixtures hand-build
   snapshots so every quantity is exact. *)

module Rng = Rm_stats.Rng
module Matrix = Rm_stats.Matrix
module Running_means = Rm_stats.Running_means
module Node = Rm_cluster.Node
module Topology = Rm_cluster.Topology
module Cluster = Rm_cluster.Cluster
module Snapshot = Rm_monitor.Snapshot
module Saw = Rm_core.Saw
module Weights = Rm_core.Weights
module Request = Rm_core.Request
module Allocation = Rm_core.Allocation
module Compute_load = Rm_core.Compute_load
module Network_load = Rm_core.Network_load
module Effective_procs = Rm_core.Effective_procs
module Candidate = Rm_core.Candidate
module Select = Rm_core.Select
module Policies = Rm_core.Policies
module Brute_force = Rm_core.Brute_force
module Broker = Rm_core.Broker
module Dense_alloc = Rm_core.Dense_alloc
module Model_cache = Rm_core.Model_cache
module Domain_pool = Rm_core.Domain_pool
module Nl_delta = Rm_core.Nl_delta

let check_float = Alcotest.(check (float 1e-9))
let flat v : Running_means.view = { instant = v; m1 = v; m5 = v; m15 = v }

(* A fixture: [specs] is a list of per-node (cores, load); all on one
   switch unless [switches] given; uniform bandwidth/latency unless
   overridden afterwards. *)
let fixture ?(switches = [||]) ?(bw = 118.0) ?(lat = 70.0) specs : Snapshot.t =
  let n = List.length specs in
  let switch_of i = if Array.length switches = 0 then 0 else switches.(i) in
  let nswitches =
    if Array.length switches = 0 then 1
    else 1 + Array.fold_left max 0 switches
  in
  let node_switch = Array.init n switch_of in
  let topology = Topology.create ~node_switch ~switches:nswitches () in
  let nodes =
    List.mapi
      (fun i (cores, _load) ->
        Node.make ~id:i
          ~hostname:(Printf.sprintf "n%d" i)
          ~cores ~freq_ghz:3.0 ~mem_gb:16.0 ~switch:(switch_of i))
      specs
  in
  let cluster = Cluster.make ~nodes ~topology in
  let infos =
    Array.of_list
      (List.mapi
         (fun i (_, load) ->
           Some
             {
               Snapshot.static = Cluster.node cluster i;
               users = 1;
               load = flat load;
               util_pct = flat 20.0;
               nic_mb_s = flat 1.0;
               mem_avail_gb = flat 12.0;
               written_at = 0.0;
             })
         specs)
  in
  let mk init diagonal =
    let m = Matrix.square n ~init in
    for i = 0 to n - 1 do
      Matrix.set m i i diagonal
    done;
    m
  in
  let bw_m = mk bw infinity in
  let lat_m = mk lat 0.0 in
  let peak = mk 118.0 infinity in
  {
    Snapshot.time = 0.0;
    cluster;
    live = List.init n (fun i -> i);
    nodes = infos;
    bw_mb_s = bw_m;
    peak_bw_mb_s = peak;
    lat_us = lat_m;
  }

let weights = Weights.paper_default

(* --- Saw --------------------------------------------------------------- *)

let test_saw_normalize_sums_to_one () =
  let out = Saw.normalize [| 1.0; 2.0; 3.0 |] in
  check_float "sum 1" 1.0 (Array.fold_left ( +. ) 0.0 out);
  check_float "proportional" (1.0 /. 6.0) out.(0)

let test_saw_normalize_zero_column () =
  let out = Saw.normalize [| 0.0; 0.0 |] in
  Alcotest.(check (array (float 1e-9))) "all zeros" [| 0.0; 0.0 |] out

let test_saw_normalize_tiny_negative_ok () =
  let out = Saw.normalize [| 1e-16 *. -1.0; 1.0 |] in
  check_float "clamped" 0.0 out.(0)

let test_saw_normalize_rejects_negative () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Saw.normalize [| -1.0; 1.0 |]);
       false
     with Invalid_argument _ -> true)

let test_saw_directionalize () =
  let out = Saw.directionalize Saw.Maximize [| 1.0; 3.0; 2.0 |] in
  Alcotest.(check (array (float 1e-9))) "max - x" [| 2.0; 0.0; 1.0 |] out;
  let id = Saw.directionalize Saw.Minimize [| 1.0; 2.0 |] in
  Alcotest.(check (array (float 1e-9))) "identity" [| 1.0; 2.0 |] id

let test_saw_combine () =
  let out = Saw.combine [ (0.5, [| 1.0; 2.0 |]); (2.0, [| 3.0; 1.0 |]) ] in
  Alcotest.(check (array (float 1e-9))) "weighted sum" [| 6.5; 3.0 |] out

let test_saw_combine_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Saw.combine: ragged columns")
    (fun () -> ignore (Saw.combine [ (1.0, [| 1.0 |]); (1.0, [| 1.0; 2.0 |]) ]))

let test_saw_constant_column_neutral () =
  (* A constant column contributes equally, so rankings are unaffected. *)
  let base = Saw.combine [ (1.0, Saw.prepare Saw.Minimize [| 1.0; 2.0; 4.0 |]) ] in
  let with_const =
    Saw.combine
      [
        (1.0, Saw.prepare Saw.Minimize [| 1.0; 2.0; 4.0 |]);
        (1.0, Saw.prepare Saw.Minimize [| 5.0; 5.0; 5.0 |]);
      ]
  in
  let rank a = List.sort (fun i j -> Float.compare a.(i) a.(j)) [ 0; 1; 2 ] in
  Alcotest.(check (list int)) "same ranking" (rank base) (rank with_const)

(* --- Weights / Request / Allocation ------------------------------------- *)

let test_weights_paper_sum () =
  check_float "attribute weights sum to 1" 1.0 (Weights.attribute_weight_sum weights);
  check_float "net weights" 1.0 (weights.Weights.w_lt +. weights.Weights.w_bw)

let test_weights_validate () =
  Weights.validate weights;
  Alcotest.(check bool) "negative rejected" true
    (try
       Weights.validate { weights with Weights.w_load = -0.1 };
       false
     with Invalid_argument _ -> true)

let test_request_defaults () =
  let r = Request.make ~procs:16 () in
  check_float "alpha" 0.5 r.Request.alpha;
  check_float "beta" 0.5 r.Request.beta;
  Alcotest.(check int) "capacity uses effective" 7
    (Request.capacity_of r ~effective:7)

let test_request_ppn_override () =
  let r = Request.make ~ppn:4 ~alpha:0.3 ~procs:16 () in
  Alcotest.(check int) "ppn wins" 4 (Request.capacity_of r ~effective:7);
  check_float "beta" 0.7 r.Request.beta

let test_request_validation () =
  Alcotest.(check bool) "procs > 0" true
    (try ignore (Request.make ~procs:0 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "alpha range" true
    (try ignore (Request.make ~alpha:1.5 ~procs:1 ()); false
     with Invalid_argument _ -> true)

let test_allocation_accessors () =
  let a =
    Allocation.make ~policy:"x"
      ~entries:[ { Allocation.node = 3; procs = 4 }; { Allocation.node = 1; procs = 2 } ]
  in
  Alcotest.(check int) "total" 6 (Allocation.total_procs a);
  Alcotest.(check (list int)) "nodes" [ 3; 1 ] (Allocation.node_ids a);
  Alcotest.(check int) "procs_on" 4 (Allocation.procs_on a ~node:3);
  Alcotest.(check int) "procs_on absent" 0 (Allocation.procs_on a ~node:9)

let test_allocation_validation () =
  Alcotest.(check bool) "duplicate node" true
    (try
       ignore
         (Allocation.make ~policy:"x"
            ~entries:
              [ { Allocation.node = 1; procs = 1 }; { Allocation.node = 1; procs = 1 } ]);
       false
     with Invalid_argument _ -> true)

(* --- Compute_load (Eq. 1) ------------------------------------------------- *)

let test_compute_load_orders_by_load () =
  let snap = fixture [ (8, 0.2); (8, 5.0); (8, 1.0) ] in
  let cl = Compute_load.of_snapshot snap ~weights in
  let g n = Compute_load.get cl ~node:n in
  Alcotest.(check bool) "loaded node costs more" true (g 1 > g 2 && g 2 > g 0)

let test_compute_load_prefers_big_nodes () =
  (* Equal dynamics; only static attributes differ. *)
  let snap = fixture [ (12, 1.0); (8, 1.0) ] in
  let cl = Compute_load.of_snapshot snap ~weights in
  Alcotest.(check bool) "more cores = lower cost" true
    (Compute_load.get cl ~node:0 < Compute_load.get cl ~node:1)

let test_compute_load_total () =
  let snap = fixture [ (8, 1.0); (8, 1.0) ] in
  let cl = Compute_load.of_snapshot snap ~weights in
  check_float "total = sum" 
    (Compute_load.get cl ~node:0 +. Compute_load.get cl ~node:1)
    (Compute_load.total cl ~nodes:[ 0; 1 ])

let test_compute_load_unusable_rejected () =
  let snap = fixture [ (8, 1.0); (8, 1.0) ] in
  let snap = { snap with Snapshot.live = [ 0 ] } in
  let cl = Compute_load.of_snapshot snap ~weights in
  Alcotest.(check (list int)) "only live usable" [ 0 ] (Compute_load.usable cl);
  Alcotest.(check bool) "get on unusable raises" true
    (try ignore (Compute_load.get cl ~node:1); false
     with Invalid_argument _ -> true)

let test_compute_load_cpu_load_1m () =
  let snap = fixture [ (8, 2.5) ] in
  let cl = Compute_load.of_snapshot snap ~weights in
  check_float "raw 1m load" 2.5 (Compute_load.cpu_load_1m cl ~node:0)

(* --- Network_load (Eq. 2) -------------------------------------------------- *)

let test_network_load_zero_when_uniform_full_bw () =
  (* Full bandwidth everywhere: complement = 0; latency uniform: NL equal. *)
  let snap = fixture [ (8, 1.0); (8, 1.0); (8, 1.0) ] in
  let nl = Network_load.of_snapshot snap ~weights in
  let v01 = Network_load.get nl ~u:0 ~v:1 in
  let v02 = Network_load.get nl ~u:0 ~v:2 in
  check_float "uniform" v01 v02;
  check_float "self zero" 0.0 (Network_load.get nl ~u:1 ~v:1)

let test_network_load_prefers_good_links () =
  let snap = fixture [ (8, 1.0); (8, 1.0); (8, 1.0) ] in
  (* Pair (0,1) congested: low available bandwidth, high latency. *)
  Matrix.set snap.Snapshot.bw_mb_s 0 1 10.0;
  Matrix.set snap.Snapshot.bw_mb_s 1 0 10.0;
  Matrix.set snap.Snapshot.lat_us 0 1 500.0;
  Matrix.set snap.Snapshot.lat_us 1 0 500.0;
  let nl = Network_load.of_snapshot snap ~weights in
  Alcotest.(check bool) "congested pair costs more" true
    (Network_load.get nl ~u:0 ~v:1 > Network_load.get nl ~u:0 ~v:2);
  check_float "raw complement" 108.0 (Network_load.bw_complement_mb_s nl ~u:0 ~v:1);
  check_float "raw latency" 500.0 (Network_load.latency_us nl ~u:0 ~v:1)

let test_network_load_symmetry () =
  let snap = fixture [ (8, 1.0); (8, 1.0); (8, 1.0) ] in
  Matrix.set snap.Snapshot.bw_mb_s 0 2 50.0;
  Matrix.set snap.Snapshot.bw_mb_s 2 0 50.0;
  let nl = Network_load.of_snapshot snap ~weights in
  check_float "symmetric" (Network_load.get nl ~u:0 ~v:2) (Network_load.get nl ~u:2 ~v:0)

let test_network_load_edges_totals () =
  let snap = fixture [ (8, 1.0); (8, 1.0); (8, 1.0) ] in
  Matrix.set snap.Snapshot.bw_mb_s 0 1 10.0;
  Matrix.set snap.Snapshot.bw_mb_s 1 0 10.0;
  let nl = Network_load.of_snapshot snap ~weights in
  let total = Network_load.total_edges nl ~nodes:[ 0; 1; 2 ] in
  let expect =
    Network_load.get nl ~u:0 ~v:1 +. Network_load.get nl ~u:0 ~v:2
    +. Network_load.get nl ~u:1 ~v:2
  in
  check_float "sum over pairs" expect total;
  check_float "mean over pairs" (expect /. 3.0)
    (Network_load.mean_edges nl ~nodes:[ 0; 1; 2 ]);
  check_float "singleton mean" 0.0 (Network_load.mean_edges nl ~nodes:[ 2 ])

(* --- Effective_procs (Eq. 3) ------------------------------------------------ *)

let test_eq3_idle () = Alcotest.(check int) "idle" 12 (Effective_procs.of_load ~cores:12 ~load:0.0)

let test_eq3_partial () =
  Alcotest.(check int) "load 2.3 -> 12-3" 9
    (Effective_procs.of_load ~cores:12 ~load:2.3);
  Alcotest.(check int) "load 5 -> 7" 7 (Effective_procs.of_load ~cores:12 ~load:5.0)

let test_eq3_modulo_wrap () =
  (* The paper's formula wraps: load 14 on 12 cores -> 12 - (14 mod 12). *)
  Alcotest.(check int) "wrap" 10 (Effective_procs.of_load ~cores:12 ~load:14.0);
  Alcotest.(check int) "exact multiple gives full" 12
    (Effective_procs.of_load ~cores:12 ~load:12.0)

let test_eq3_bounds () =
  for load10 = 0 to 300 do
    let pc = Effective_procs.of_load ~cores:8 ~load:(float_of_int load10 /. 10.0) in
    Alcotest.(check bool) "in [1, cores]" true (pc >= 1 && pc <= 8)
  done

let test_eq3_of_snapshot () =
  let snap = fixture [ (12, 2.3); (8, 0.0) ] in
  let cl = Compute_load.of_snapshot snap ~weights in
  let pc = Effective_procs.of_snapshot snap ~loads:cl in
  Alcotest.(check (list (pair int int)))
    "per node" [ (0, 9); (1, 8) ]
    (Effective_procs.to_list pc);
  Alcotest.(check int) "O(1) lookup" 9 (Effective_procs.get pc ~node:0);
  Alcotest.(check int) "absent defaults to 1" 1 (Effective_procs.get pc ~node:42)

(* --- Candidate (Algorithm 1) ------------------------------------------------- *)

let capacity_of snap request =
  let cl = Compute_load.of_snapshot snap ~weights in
  let pc = Effective_procs.of_snapshot snap ~loads:cl in
  fun node ->
    Request.capacity_of request ~effective:(Effective_procs.get pc ~node)

let test_candidate_starts_with_start () =
  let snap = fixture [ (8, 0.1); (8, 3.0); (8, 0.2); (8, 0.3) ] in
  let cl = Compute_load.of_snapshot snap ~weights in
  let nl = Network_load.of_snapshot snap ~weights in
  let request = Request.make ~ppn:4 ~procs:8 () in
  let c =
    Candidate.generate ~start:1 ~loads:cl ~net:nl
      ~capacity:(capacity_of snap request) ~request
  in
  Alcotest.(check int) "start first" 1 (List.hd c.Candidate.nodes);
  Alcotest.(check int) "covers request" 8 (Candidate.total_procs c)

let test_candidate_greedy_prefers_low_cost () =
  (* Start at 0; node 2 is quiet, node 1 heavily loaded: 2 joins first. *)
  let snap = fixture [ (8, 0.1); (8, 6.0); (8, 0.1) ] in
  let cl = Compute_load.of_snapshot snap ~weights in
  let nl = Network_load.of_snapshot snap ~weights in
  let request = Request.make ~ppn:4 ~procs:8 () in
  let c =
    Candidate.generate ~start:0 ~loads:cl ~net:nl
      ~capacity:(capacity_of snap request) ~request
  in
  Alcotest.(check (list int)) "0 then 2" [ 0; 2 ] c.Candidate.nodes

let test_candidate_network_steers_selection () =
  (* All equal load; pair (0,1) has poor bandwidth, (0,2) good: starting
     from 0, node 2 must join before node 1. *)
  let snap = fixture [ (8, 1.0); (8, 1.0); (8, 1.0) ] in
  Matrix.set snap.Snapshot.bw_mb_s 0 1 5.0;
  Matrix.set snap.Snapshot.bw_mb_s 1 0 5.0;
  let cl = Compute_load.of_snapshot snap ~weights in
  let nl = Network_load.of_snapshot snap ~weights in
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:8 () in
  let c =
    Candidate.generate ~start:0 ~loads:cl ~net:nl
      ~capacity:(capacity_of snap request) ~request
  in
  Alcotest.(check (list int)) "avoids bad link" [ 0; 2 ] c.Candidate.nodes

let test_candidate_round_robin_overflow () =
  (* 2 nodes x 4 ppn = 8 capacity, but 11 processes requested: the 3
     extra are dealt round-robin. *)
  let snap = fixture [ (8, 0.0); (8, 0.0) ] in
  let cl = Compute_load.of_snapshot snap ~weights in
  let nl = Network_load.of_snapshot snap ~weights in
  let request = Request.make ~ppn:4 ~procs:11 () in
  let c =
    Candidate.generate ~start:0 ~loads:cl ~net:nl
      ~capacity:(capacity_of snap request) ~request
  in
  Alcotest.(check int) "total procs" 11 (Candidate.total_procs c);
  let procs = List.map snd c.Candidate.assignment in
  Alcotest.(check (list int)) "round robin 6,5" [ 6; 5 ] procs

let test_candidate_addition_cost () =
  let snap = fixture [ (8, 0.0); (8, 4.0) ] in
  let cl = Compute_load.of_snapshot snap ~weights in
  let nl = Network_load.of_snapshot snap ~weights in
  let request = Request.make ~alpha:1.0 ~procs:2 () in
  check_float "A_v(v) = 0" 0.0
    (Candidate.addition_cost ~loads:cl ~net:nl ~request ~start:0 0);
  check_float "alpha=1: pure CL" (Compute_load.get cl ~node:1)
    (Candidate.addition_cost ~loads:cl ~net:nl ~request ~start:0 1)

let test_candidate_all_count () =
  let snap = fixture [ (8, 0.0); (8, 0.0); (8, 0.0); (8, 0.0) ] in
  let cl = Compute_load.of_snapshot snap ~weights in
  let nl = Network_load.of_snapshot snap ~weights in
  let request = Request.make ~ppn:2 ~procs:4 () in
  let cs =
    Candidate.generate_all ~loads:cl ~net:nl
      ~capacity:(capacity_of snap request) ~request
  in
  Alcotest.(check int) "|V| candidates" 4 (List.length cs);
  List.iter
    (fun (c : Candidate.t) ->
      Alcotest.(check int) "each covers" 4 (Candidate.total_procs c))
    cs

(* --- Select (Algorithm 2, Eq. 4) ---------------------------------------------- *)

let test_select_minimizes_total () =
  (* Two switches; switch 1's pair links are degraded. Starting nodes on
     switch 0 give candidates confined there -> lower network cost. *)
  let snap =
    fixture ~switches:[| 0; 0; 1; 1 |]
      [ (8, 1.0); (8, 1.0); (8, 1.0); (8, 1.0) ]
  in
  (* Degrade everything touching switch 1. *)
  List.iter
    (fun (i, j) ->
      Matrix.set snap.Snapshot.bw_mb_s i j 10.0;
      Matrix.set snap.Snapshot.bw_mb_s j i 10.0)
    [ (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ];
  let cl = Compute_load.of_snapshot snap ~weights in
  let nl = Network_load.of_snapshot snap ~weights in
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:8 () in
  let candidates =
    Candidate.generate_all ~loads:cl ~net:nl
      ~capacity:(capacity_of snap request) ~request
  in
  let best = Select.best ~candidates ~loads:cl ~net:nl ~request in
  Alcotest.(check (list int)) "confined to switch 0" [ 0; 1 ]
    (List.sort compare best.Select.candidate.Candidate.nodes)

let test_select_scores_all () =
  let snap = fixture [ (8, 0.0); (8, 1.0); (8, 2.0) ] in
  let cl = Compute_load.of_snapshot snap ~weights in
  let nl = Network_load.of_snapshot snap ~weights in
  let request = Request.make ~ppn:4 ~procs:8 () in
  let candidates =
    Candidate.generate_all ~loads:cl ~net:nl
      ~capacity:(capacity_of snap request) ~request
  in
  let scored = Select.score ~candidates ~loads:cl ~net:nl ~request in
  Alcotest.(check int) "same count" (List.length candidates) (List.length scored);
  let best = Select.best ~candidates ~loads:cl ~net:nl ~request in
  List.iter
    (fun s ->
      Alcotest.(check bool) "best is minimal" true
        (best.Select.total <= s.Select.total +. 1e-12))
    scored

let test_select_alpha_one_is_load_only () =
  (* With alpha=1 the winner must contain the lowest-CL nodes. *)
  let snap = fixture [ (8, 5.0); (8, 0.1); (8, 0.2); (8, 6.0) ] in
  let cl = Compute_load.of_snapshot snap ~weights in
  let nl = Network_load.of_snapshot snap ~weights in
  let request = Request.make ~ppn:4 ~alpha:1.0 ~procs:8 () in
  let candidates =
    Candidate.generate_all ~loads:cl ~net:nl
      ~capacity:(capacity_of snap request) ~request
  in
  let best = Select.best ~candidates ~loads:cl ~net:nl ~request in
  Alcotest.(check (list int)) "two quiet nodes" [ 1; 2 ]
    (List.sort compare best.Select.candidate.Candidate.nodes)

(* --- Policies ------------------------------------------------------------------ *)

let busy_snapshot () =
  let snap =
    fixture ~switches:[| 0; 0; 0; 1; 1; 1 |]
      [ (8, 0.1); (8, 4.0); (8, 0.2); (8, 0.1); (8, 5.0); (8, 0.3) ]
  in
  snap

let test_policies_satisfy_request () =
  let snap = busy_snapshot () in
  let request = Request.make ~ppn:4 ~procs:8 () in
  let rng = Rng.create 1 in
  List.iter
    (fun policy ->
      match Policies.allocate ~policy ~snapshot:snap ~weights ~request ~rng () with
      | Ok a ->
        Alcotest.(check int)
          (Policies.name policy ^ " total")
          8 (Allocation.total_procs a);
        Alcotest.(check string) "policy label" (Policies.name policy)
          a.Allocation.policy
      | Error _ -> Alcotest.fail "allocation failed")
    Policies.all

let test_policy_load_aware_picks_quiet () =
  let snap = busy_snapshot () in
  let request = Request.make ~ppn:4 ~procs:8 () in
  let rng = Rng.create 1 in
  match
    Policies.allocate ~policy:Policies.Load_aware ~snapshot:snap ~weights
      ~request ~rng ()
  with
  | Ok a ->
    let nodes = List.sort compare (Allocation.node_ids a) in
    Alcotest.(check bool) "avoids loaded nodes 1 and 4" true
      ((not (List.mem 1 nodes)) && not (List.mem 4 nodes))
  | Error _ -> Alcotest.fail "allocation failed"

let test_policy_sequential_consecutive () =
  let snap = busy_snapshot () in
  let request = Request.make ~ppn:4 ~procs:8 () in
  let rng = Rng.create 42 in
  match
    Policies.allocate ~policy:Policies.Sequential ~snapshot:snap ~weights
      ~request ~rng ()
  with
  | Ok a ->
    (match Allocation.node_ids a with
    | [ a1; a2 ] ->
      Alcotest.(check bool) "consecutive (mod n)" true
        (a2 = (a1 + 1) mod 6)
    | _ -> Alcotest.fail "expected two nodes")
  | Error _ -> Alcotest.fail "allocation failed"

let test_policy_random_uses_rng () =
  let snap = busy_snapshot () in
  let request = Request.make ~ppn:4 ~procs:8 () in
  let collect seed =
    let rng = Rng.create seed in
    match
      Policies.allocate ~policy:Policies.Random ~snapshot:snap ~weights ~request ~rng ()
    with
    | Ok a -> Allocation.node_ids a
    | Error _ -> []
  in
  let distinct =
    List.sort_uniq compare (List.init 20 (fun s -> collect s))
  in
  Alcotest.(check bool) "different draws differ" true (List.length distinct > 1)

let test_policy_network_aware_deterministic () =
  let snap = busy_snapshot () in
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:8 () in
  let run seed =
    match
      Policies.allocate ~policy:Policies.Network_load_aware ~snapshot:snap
        ~weights ~request ~rng:(Rng.create seed) ()
    with
    | Ok a -> Allocation.node_ids a
    | Error _ -> []
  in
  Alcotest.(check (list int)) "rng-independent" (run 1) (run 999)

let test_policy_no_usable_nodes () =
  let snap = busy_snapshot () in
  let snap = { snap with Snapshot.live = [] } in
  let request = Request.make ~procs:4 () in
  match
    Policies.allocate ~policy:Policies.Random ~snapshot:snap ~weights ~request
      ~rng:(Rng.create 1) ()
  with
  | Error Allocation.No_usable_nodes -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected No_usable_nodes"

let test_policy_oversubscribes_when_needed () =
  let snap = fixture [ (8, 0.0); (8, 0.0) ] in
  let request = Request.make ~ppn:4 ~procs:20 () in
  List.iter
    (fun policy ->
      match
        Policies.allocate ~policy ~snapshot:snap ~weights ~request
          ~rng:(Rng.create 3) ()
      with
      | Ok a ->
        Alcotest.(check int) (Policies.name policy) 20 (Allocation.total_procs a)
      | Error _ -> Alcotest.fail "should oversubscribe")
    Policies.all

let test_policy_hierarchical_via_policies () =
  let snap = busy_snapshot () in
  let request = Request.make ~ppn:4 ~procs:8 () in
  match
    Policies.allocate ~policy:Policies.Hierarchical ~snapshot:snap ~weights
      ~request ~rng:(Rng.create 1) ()
  with
  | Ok a ->
    Alcotest.(check int) "covers" 8 (Allocation.total_procs a);
    Alcotest.(check string) "label" "hierarchical" a.Allocation.policy
  | Error _ -> Alcotest.fail "hierarchical policy failed"

let test_policy_names_roundtrip () =
  List.iter
    (fun p ->
      match Policies.of_name (Policies.name p) with
      | Some p' -> Alcotest.(check bool) "roundtrip" true (p = p')
      | None -> Alcotest.fail "name not found")
    Policies.all;
  Alcotest.(check bool) "unknown" true (Policies.of_name "bogus" = None);
  Alcotest.(check bool) "hierarchical resolvable" true
    (Policies.of_name "hierarchical" = Some Policies.Hierarchical);
  Alcotest.(check bool) "not in the paper's four" false
    (List.mem Policies.Hierarchical Policies.all)

(* --- Brute force ------------------------------------------------------------------ *)

let test_brute_force_matches_exhaustive_small () =
  let snap = fixture [ (8, 3.0); (8, 0.1); (8, 0.2); (8, 4.0) ] in
  let cl = Compute_load.of_snapshot snap ~weights in
  let nl = Network_load.of_snapshot snap ~weights in
  let request = Request.make ~ppn:4 ~alpha:1.0 ~procs:8 () in
  match
    Brute_force.best_subset ~loads:cl ~net:nl
      ~capacity:(capacity_of snap request) ~request ~max_nodes:4
  with
  | Some (nodes, score) ->
    Alcotest.(check (list int)) "quietest pair optimal" [ 1; 2 ]
      (List.sort compare nodes);
    check_float "objective consistent" score
      (Brute_force.objective ~loads:cl ~net:nl ~request ~nodes)
  | None -> Alcotest.fail "no subset found"

let test_greedy_never_better_than_brute_force () =
  (* Sanity: brute force is a lower bound on the greedy objective. *)
  for seed = 0 to 9 do
    let loads = List.init 5 (fun i -> (8, float_of_int ((seed + i) mod 5))) in
    let snap = fixture loads in
    let cl = Compute_load.of_snapshot snap ~weights in
    let nl = Network_load.of_snapshot snap ~weights in
    let request = Request.make ~ppn:4 ~alpha:0.5 ~procs:10 () in
    let capacity = capacity_of snap request in
    let candidates = Candidate.generate_all ~loads:cl ~net:nl ~capacity ~request in
    let greedy = Select.best ~candidates ~loads:cl ~net:nl ~request in
    let greedy_obj =
      Brute_force.objective ~loads:cl ~net:nl ~request
        ~nodes:greedy.Select.candidate.Candidate.nodes
    in
    match Brute_force.best_subset ~loads:cl ~net:nl ~capacity ~request ~max_nodes:5 with
    | Some (_, opt) ->
      Alcotest.(check bool) "greedy >= optimal" true (greedy_obj >= opt -. 1e-12)
    | None -> Alcotest.fail "brute force found nothing"
  done

let test_brute_force_guard () =
  let specs = List.init 21 (fun _ -> (8, 0.0)) in
  let snap = fixture specs in
  let cl = Compute_load.of_snapshot snap ~weights in
  let nl = Network_load.of_snapshot snap ~weights in
  let request = Request.make ~procs:4 () in
  Alcotest.check_raises "guard"
    (Invalid_argument "Brute_force.best_subset: too many nodes") (fun () ->
      ignore
        (Brute_force.best_subset ~loads:cl ~net:nl
           ~capacity:(fun _ -> 4)
           ~request ~max_nodes:21))

(* --- Broker ----------------------------------------------------------------------- *)

let test_broker_allocates_by_default () =
  let snap = busy_snapshot () in
  let request = Request.make ~ppn:4 ~procs:8 () in
  match
    Broker.decide ~config:Broker.default_config ~snapshot:snap ~request
      ~rng:(Rng.create 1)
  with
  | Ok (Broker.Allocated a) ->
    Alcotest.(check int) "total" 8 (Allocation.total_procs a)
  | Ok (Broker.Wait _) -> Alcotest.fail "should not wait by default"
  | Error _ -> Alcotest.fail "error"

let test_broker_recommends_waiting () =
  let snap = fixture [ (8, 30.0); (8, 28.0) ] in
  let config = { Broker.default_config with Broker.wait_threshold = Some 0.9 } in
  let request = Request.make ~ppn:4 ~procs:8 () in
  match Broker.decide ~config ~snapshot:snap ~request ~rng:(Rng.create 1) with
  | Ok (Broker.Wait { mean_load_per_core; threshold }) ->
    check_float "threshold echoed" 0.9 threshold;
    Alcotest.(check bool) "load reported" true (mean_load_per_core > 3.0)
  | Ok (Broker.Allocated _) -> Alcotest.fail "should wait"
  | Error _ -> Alcotest.fail "error"

let test_broker_threshold_not_exceeded () =
  let snap = fixture [ (8, 0.1); (8, 0.2) ] in
  let config = { Broker.default_config with Broker.wait_threshold = Some 0.9 } in
  let request = Request.make ~ppn:4 ~procs:8 () in
  match Broker.decide ~config ~snapshot:snap ~request ~rng:(Rng.create 1) with
  | Ok (Broker.Allocated _) -> ()
  | Ok (Broker.Wait _) -> Alcotest.fail "quiet cluster should allocate"
  | Error _ -> Alcotest.fail "error"

let test_broker_mean_load_per_core () =
  let snap = fixture [ (8, 4.0); (8, 0.0) ] in
  check_float "mean load/core" (4.0 /. 16.0)
    (Broker.mean_load_per_core snap ~weights)

(* [age] some node records, leaving the rest freshly written. *)
let aged_snapshot ~now ~stale specs =
  let snap = { (fixture specs) with Snapshot.time = now } in
  Array.iteri
    (fun i info ->
      match info with
      | Some info ->
        let written_at = if List.mem i stale then 0.0 else now in
        snap.Snapshot.nodes.(i) <- Some { info with Snapshot.written_at }
      | None -> ())
    snap.Snapshot.nodes;
  snap

let test_broker_excludes_stale_records () =
  (* Nodes 0 and 1 are idle but their records are 1000 s old; 2 and 3
     are loaded but fresh. With the gate on, the allocation must land on
     the fresh pair despite the worse scores. *)
  let snap =
    aged_snapshot ~now:1000.0 ~stale:[ 0; 1 ]
      [ (8, 0.0); (8, 0.0); (8, 4.0); (8, 4.0) ]
  in
  let request = Request.make ~ppn:4 ~procs:8 () in
  let config = { Broker.default_config with Broker.max_staleness_s = 120.0 } in
  (match Broker.decide ~config ~snapshot:snap ~request ~rng:(Rng.create 1) with
  | Ok (Broker.Allocated a) ->
    List.iter
      (fun (e : Allocation.entry) ->
        Alcotest.(check bool)
          (Printf.sprintf "node %d is fresh" e.Allocation.node)
          true
          (e.Allocation.node >= 2))
      a.Allocation.entries
  | Ok (Broker.Wait _) -> Alcotest.fail "should allocate"
  | Error _ -> Alcotest.fail "fresh nodes should suffice");
  (* Default config (infinite staleness budget): the idle stale pair
     wins, proving the gate is what shrank the eligible set. *)
  match
    Broker.decide ~config:Broker.default_config ~snapshot:snap ~request
      ~rng:(Rng.create 1)
  with
  | Ok (Broker.Allocated a) ->
    Alcotest.(check bool) "stale-but-idle nodes used without the gate" true
      (List.exists (fun (e : Allocation.entry) -> e.Allocation.node <= 1)
         a.Allocation.entries)
  | _ -> Alcotest.fail "ungated decision failed"

let test_broker_all_stale_is_an_error () =
  let snap =
    aged_snapshot ~now:1000.0 ~stale:[ 0; 1; 2; 3 ]
      [ (8, 0.0); (8, 0.0); (8, 0.0); (8, 0.0) ]
  in
  let config = { Broker.default_config with Broker.max_staleness_s = 60.0 } in
  let request = Request.make ~ppn:4 ~procs:8 () in
  match Broker.decide ~config ~snapshot:snap ~request ~rng:(Rng.create 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "every record is stale; nothing is eligible"

let test_broker_stale_exclusions_audited () =
  Rm_telemetry.Runtime.enable ();
  Rm_telemetry.Audit.clear ();
  let snap =
    aged_snapshot ~now:1000.0 ~stale:[ 1 ]
      [ (8, 0.0); (8, 0.0); (8, 0.0); (8, 0.0) ]
  in
  let config = { Broker.default_config with Broker.max_staleness_s = 120.0 } in
  let request = Request.make ~ppn:4 ~procs:8 () in
  (match Broker.decide ~config ~snapshot:snap ~request ~rng:(Rng.create 1) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "decision failed");
  let record =
    match Rm_telemetry.Audit.last () with
    | Some r -> r
    | None -> Alcotest.fail "no audit record"
  in
  Rm_telemetry.Runtime.disable ();
  Rm_telemetry.Audit.clear ();
  Alcotest.(check (list int)) "stale nodes reported" [ 1 ]
    record.Rm_telemetry.Audit.stale_excluded;
  Alcotest.(check bool) "explanation mentions staleness" true
    (let hay = Format.asprintf "%a" Rm_telemetry.Audit.pp_explain record in
     let needle = "stale" in
     let h = String.length hay and n = String.length needle in
     let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
     go 0)

(* --- qcheck: allocator invariants ---------------------------------------------- *)

let qcheck = QCheck_alcotest.to_alcotest

let loads_gen = QCheck.Gen.(list_size (return 6) (float_bound_inclusive 8.0))

let prop_nl_aware_covers_any_loads =
  QCheck.Test.make ~name:"network-load-aware covers request on any loads"
    ~count:100 (QCheck.make loads_gen)
    (fun loads ->
      let snap = fixture (List.map (fun l -> (8, l)) loads) in
      let request = Request.make ~ppn:4 ~procs:12 () in
      match
        Policies.allocate ~policy:Policies.Network_load_aware ~snapshot:snap
          ~weights ~request ~rng:(Rng.create 0) ()
      with
      | Ok a -> Allocation.total_procs a = 12
      | Error _ -> false)

let prop_candidate_nodes_distinct =
  QCheck.Test.make ~name:"candidate nodes are distinct" ~count:100
    (QCheck.make loads_gen)
    (fun loads ->
      let snap = fixture (List.map (fun l -> (8, l)) loads) in
      let cl = Compute_load.of_snapshot snap ~weights in
      let nl = Network_load.of_snapshot snap ~weights in
      let request = Request.make ~ppn:4 ~procs:16 () in
      let cs =
        Candidate.generate_all ~loads:cl ~net:nl
          ~capacity:(capacity_of snap request) ~request
      in
      List.for_all
        (fun (c : Candidate.t) ->
          let ns = c.Candidate.nodes in
          List.length ns = List.length (List.sort_uniq compare ns))
        cs)

(* --- Dense fast path == naive reference ------------------------------------ *)

(* A randomized fixture driven by one PRNG stream: node count, core
   mix, loads, switch layout and per-pair link degradations all vary,
   so the dense/naive comparison sees asymmetric topologies, cost ties
   and oversubscription. *)
let random_fixture rng =
  let n = 3 + Rng.int rng 6 in
  let nswitches = 1 + Rng.int rng 2 in
  let switches = Array.init n (fun i -> i mod nswitches) in
  let specs =
    List.init n (fun _ ->
        ( (if Rng.bool rng then 8 else 12),
          Rng.uniform rng ~lo:0.0 ~hi:8.0 ))
  in
  let snap = fixture ~switches specs in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.bernoulli rng ~p:0.3 then begin
        let bw = Rng.uniform rng ~lo:5.0 ~hi:118.0 in
        let lat = Rng.uniform rng ~lo:70.0 ~hi:500.0 in
        Matrix.set snap.Snapshot.bw_mb_s i j bw;
        Matrix.set snap.Snapshot.bw_mb_s j i bw;
        Matrix.set snap.Snapshot.lat_us i j lat;
        Matrix.set snap.Snapshot.lat_us j i lat
      end
    done
  done;
  snap

let random_request rng =
  (* alpha hits the 0.0 and 1.0 boundaries; procs ranges from trivially
     satisfiable to cluster-wide oversubscription. *)
  let alpha = 0.1 *. float_of_int (Rng.int rng 11) in
  let procs = 1 + Rng.int rng 40 in
  let ppn = if Rng.bool rng then Some (1 + Rng.int rng 8) else None in
  Request.make ?ppn ~alpha ~procs ()

let prop_dense_matches_naive =
  QCheck.Test.make
    ~name:"dense fast path returns identical allocations to naive (all policies)"
    ~count:150
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.create seed in
      let snap = random_fixture rng in
      let request = random_request rng in
      List.for_all
        (fun policy ->
          Model_cache.clear ();
          let fast =
            Policies.allocate ~policy ~snapshot:snap ~weights ~request
              ~rng:(Rng.create (seed + 1)) ()
          in
          let naive =
            Policies.allocate_naive ~policy ~snapshot:snap ~weights ~request
              ~rng:(Rng.create (seed + 1))
          in
          fast = naive)
        (Policies.all @ [ Policies.Hierarchical ]))

(* Stronger than allocation equality: the whole scored table must match
   bit-for-bit (costs, totals, candidate order), so ties keep breaking
   the same way no matter how close two totals are. *)
let prop_dense_scored_table_bit_identical =
  QCheck.Test.make
    ~name:"dense scored table is bit-identical to Candidate+Select"
    ~count:150
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.create seed in
      let snap = random_fixture rng in
      let request = random_request rng in
      let cl = Compute_load.of_snapshot snap ~weights in
      let nl = Network_load.of_snapshot snap ~weights in
      let capacity = capacity_of snap request in
      let dense = Dense_alloc.scored_all ~loads:cl ~net:nl ~capacity ~request () in
      let naive =
        Select.score
          ~candidates:
            (Candidate.generate_all ~loads:cl ~net:nl ~capacity ~request)
          ~loads:cl ~net:nl ~request
      in
      List.length dense = List.length naive
      && List.for_all2
           (fun (d : Select.scored) (s : Select.scored) ->
             d.Select.candidate = s.Select.candidate
             && Float.equal d.Select.compute_cost s.Select.compute_cost
             && Float.equal d.Select.network_cost s.Select.network_cost
             && Float.equal d.Select.total s.Select.total)
           dense naive)

(* Like [random_fixture] but at a caller-chosen node count: the
   parallel-sweep properties need V >= Dense_alloc.par_v_threshold or
   the sequential fallback silently stops exercising the domain pool.
   Degradations are sparser (the pair count is quadratic in n). *)
let sized_random_fixture rng n =
  let nswitches = 1 + Rng.int rng 4 in
  let switches = Array.init n (fun i -> i mod nswitches) in
  let specs =
    List.init n (fun _ ->
        ( (if Rng.bool rng then 8 else 12),
          Rng.uniform rng ~lo:0.0 ~hi:8.0 ))
  in
  let snap = fixture ~switches specs in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.bernoulli rng ~p:0.05 then begin
        let bw = Rng.uniform rng ~lo:5.0 ~hi:118.0 in
        let lat = Rng.uniform rng ~lo:70.0 ~hi:500.0 in
        Matrix.set snap.Snapshot.bw_mb_s i j bw;
        Matrix.set snap.Snapshot.bw_mb_s j i bw;
        Matrix.set snap.Snapshot.lat_us i j lat;
        Matrix.set snap.Snapshot.lat_us j i lat
      end
    done
  done;
  snap

(* The parallel sweep must not merely agree with the sequential one in
   which allocation wins — the whole scored table must be bit-identical
   for every domain count, or a tie could break differently depending
   on how many cores the host happens to have. *)
let prop_dense_parallel_bit_identical =
  QCheck.Test.make
    ~name:"parallel scored_all is bit-identical for ndomains in {1, 2, 4}"
    ~count:25
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.create seed in
      let snap =
        sized_random_fixture rng
          (Dense_alloc.par_v_threshold + Rng.int rng 16)
      in
      let request = random_request rng in
      let weights =
        match Rng.int rng 4 with
        | 0 -> Weights.paper_default
        | 1 -> Weights.compute_intensive
        | 2 -> Weights.network_intensive
        | _ -> Weights.latency_sensitive
      in
      let cl = Compute_load.of_snapshot snap ~weights in
      let nl = Network_load.of_snapshot snap ~weights in
      let capacity = capacity_of snap request in
      let run ndomains =
        Dense_alloc.scored_all ~ndomains ~loads:cl ~net:nl ~capacity ~request ()
      in
      let seq = run 1 in
      List.for_all
        (fun ndomains ->
          let par = run ndomains in
          List.length par = List.length seq
          && List.for_all2
               (fun (a : Select.scored) (b : Select.scored) ->
                 a.Select.candidate = b.Select.candidate
                 && Float.equal a.Select.compute_cost b.Select.compute_cost
                 && Float.equal a.Select.network_cost b.Select.network_cost
                 && Float.equal a.Select.total b.Select.total)
               par seq)
        [ 2; 4 ])

(* Regression: ndomains above the pool ceiling used to chunk the V
   starts over the *requested* count while Domain_pool.get silently
   clamped the actual worker count, so every start beyond
   [max_workers * chunk] was never computed and the merge died with
   Assert_failure (reachable via `bench scale --domains 20` or any
   Policies.allocate ~ndomains). Needs V > max_workers: smaller V
   clamps ndomains to V before the pool is involved — and now also
   V >= par_v_threshold, or the sequential fallback skips the pool. *)
let test_dense_parallel_oversized_ndomains () =
  let n = max Dense_alloc.par_v_threshold Domain_pool.max_workers + 4 in
  let snap = fixture (List.init n (fun i -> (8, float_of_int (i mod 5)))) in
  let cl = Compute_load.of_snapshot snap ~weights in
  let nl = Network_load.of_snapshot snap ~weights in
  let request = Request.make ~ppn:4 ~procs:24 () in
  let capacity = capacity_of snap request in
  let run ndomains =
    Dense_alloc.scored_all ~ndomains ~loads:cl ~net:nl ~capacity ~request ()
  in
  let seq = run 1 in
  let par = run (2 * Domain_pool.max_workers) in
  Alcotest.(check bool)
    "oversized ndomains is clamped, output bit-identical" true (par = seq)

(* Regression: a NaN in the NL matrix used to corrupt the heap's float
   ordering silently (both [<] and [=] are false on NaN), making the
   dense path quietly diverge from the naive compare-based sort. Now it
   is rejected at entry. An infinite latency on one link is how a NaN
   arrives in practice: lat_sum becomes inf and inf /. inf is NaN. *)
let test_dense_rejects_nonfinite_nl () =
  let snap = fixture [ (8, 1.0); (8, 2.0); (8, 0.5) ] in
  Matrix.set snap.Snapshot.lat_us 0 1 infinity;
  Matrix.set snap.Snapshot.lat_us 1 0 infinity;
  let cl = Compute_load.of_snapshot snap ~weights in
  let nl = Network_load.of_snapshot snap ~weights in
  let request = Request.make ~ppn:4 ~procs:8 () in
  let capacity = capacity_of snap request in
  match
    Dense_alloc.scored_all ~loads:cl ~net:nl ~capacity ~request ()
  with
  | _ -> Alcotest.fail "expected Invalid_argument on non-finite NL"
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      "message names the model" true
      (String.length msg >= 13 && String.sub msg 0 13 = "Dense_alloc.s")

(* --- Domain pool ------------------------------------------------------------- *)

let test_domain_pool_runs_every_worker () =
  let pool = Domain_pool.get 4 in
  Alcotest.(check int) "size clamped to request" 4 (Domain_pool.size pool);
  let hits = Array.make 4 0 in
  Domain_pool.run pool (fun w -> hits.(w) <- hits.(w) + 1);
  Alcotest.(check (array int)) "each worker ran once" [| 1; 1; 1; 1 |] hits;
  (* Reuse: same pool object, fresh job. *)
  Alcotest.(check bool) "pools are memoized per size" true
    (pool == Domain_pool.get 4);
  Domain_pool.run pool (fun w -> hits.(w) <- hits.(w) + 10);
  Alcotest.(check (array int)) "reused for a second job" [| 11; 11; 11; 11 |]
    hits

let test_domain_pool_propagates_exceptions () =
  let pool = Domain_pool.get 2 in
  (match Domain_pool.run pool (fun w -> if w = 1 then failwith "boom") with
  | () -> Alcotest.fail "expected the worker's exception"
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg);
  (* The failed job must not wedge the pool. *)
  let total = Atomic.make 0 in
  Domain_pool.run pool (fun w -> ignore (Atomic.fetch_and_add total (w + 1)));
  Alcotest.(check int) "pool still works after a failure" 3 (Atomic.get total)

let test_domain_pool_default_knob () =
  let before = Domain_pool.default_domains () in
  Fun.protect
    ~finally:(fun () -> Domain_pool.set_default_domains before)
    (fun () ->
      Domain_pool.set_default_domains 3;
      Alcotest.(check int) "set/get" 3 (Domain_pool.default_domains ());
      Alcotest.check_raises "rejects < 1"
        (Invalid_argument "Domain_pool.set_default_domains: need n >= 1")
        (fun () -> Domain_pool.set_default_domains 0))

(* --- Model cache ------------------------------------------------------------- *)

let test_model_cache_hit_and_invalidation () =
  let snap = fixture [ (8, 1.0); (8, 2.0); (12, 0.5) ] in
  Model_cache.clear ();
  let h0 = Model_cache.hits () and m0 = Model_cache.misses () in
  let b1 = Model_cache.get snap ~weights in
  Alcotest.(check int) "first get misses" (m0 + 1) (Model_cache.misses ());
  let b2 = Model_cache.get snap ~weights in
  Alcotest.(check int) "second get hits" (h0 + 1) (Model_cache.hits ());
  Alcotest.(check bool) "one shared model build" true
    (Model_cache.loads b1 == Model_cache.loads b2);
  (* A later monitor update produces a new record: miss. *)
  let snap_t = { snap with Snapshot.time = snap.Snapshot.time +. 30.0 } in
  ignore (Model_cache.get snap_t ~weights);
  Alcotest.(check int) "time change misses" (m0 + 2) (Model_cache.misses ());
  (* Restricting the usable set produces a new record: miss. *)
  let snap_u = Snapshot.restrict snap ~exclude:[ 2 ] in
  ignore (Model_cache.get snap_u ~weights);
  Alcotest.(check int) "usable-set change misses" (m0 + 3)
    (Model_cache.misses ());
  (* Same record, different weights: miss. *)
  ignore (Model_cache.get snap ~weights:Weights.network_intensive);
  Alcotest.(check int) "weights change misses" (m0 + 4)
    (Model_cache.misses ());
  (* The original pair is still resident after all those misses. *)
  ignore (Model_cache.get snap ~weights);
  Alcotest.(check int) "original still cached" (h0 + 2) (Model_cache.hits ())

let test_model_cache_models_match_direct_build () =
  let snap = fixture [ (8, 3.0); (12, 1.0); (8, 0.0) ] in
  Model_cache.clear ();
  let b = Model_cache.get snap ~weights in
  let direct_cl = Compute_load.of_snapshot snap ~weights in
  List.iter
    (fun node ->
      check_float
        (Printf.sprintf "CL(%d)" node)
        (Compute_load.get direct_cl ~node)
        (Compute_load.get (Model_cache.loads b) ~node))
    (Compute_load.usable direct_cl);
  Alcotest.(check (list (pair int int)))
    "pc matches direct build"
    (Effective_procs.to_list
       (Effective_procs.of_snapshot snap ~loads:direct_cl))
    (Effective_procs.to_list (Model_cache.pc b))

(* --- Network_load factored form ---------------------------------------------- *)

let test_nl_raw_matches_matrix () =
  let rng = Rng.create 11 in
  let snap = random_fixture rng in
  let net = Network_load.of_snapshot snap ~weights in
  let r = Network_load.raw net in
  let m = Network_load.nl_matrix net in
  let v = List.length (Network_load.usable net) in
  for i = 0 to v - 1 do
    for j = 0 to v - 1 do
      if not (Float.equal (Network_load.raw_get r i j) (Matrix.get m i j))
      then
        Alcotest.failf "raw_get (%d,%d) not bit-equal to the NL matrix" i j
    done
  done

let test_nl_dense_degrees_match_brute_force () =
  let rng = Rng.create 23 in
  let snap = random_fixture rng in
  let net = Network_load.of_snapshot snap ~weights in
  let ids = Array.of_list (Network_load.usable net) in
  let v = Array.length ids in
  let deg = Network_load.dense_degrees net in
  Alcotest.(check int) "one degree per usable node" v (Array.length deg);
  for i = 0 to v - 1 do
    let sum = ref 0.0 in
    for j = 0 to v - 1 do
      if j <> i then
        sum := !sum +. Network_load.get net ~u:ids.(i) ~v:ids.(j)
    done;
    let expect = if v <= 1 then 0.0 else !sum /. float_of_int (v - 1) in
    check_float (Printf.sprintf "degree of dense %d" i) expect deg.(i)
  done

let test_nl_block_mean_table_matches_brute_force () =
  let rng = Rng.create 37 in
  let snap = random_fixture rng in
  let net = Network_load.of_snapshot snap ~weights in
  let ids = Array.of_list (Network_load.usable net) in
  let v = Array.length ids in
  let nblocks = 3 in
  (* Every fourth node is excluded (-1) to exercise the skip path. *)
  let block_of_dense =
    Array.init v (fun i -> if i mod 4 = 3 then -1 else i mod nblocks)
  in
  let table = Network_load.block_mean_table net ~block_of_dense ~nblocks in
  for a = 0 to nblocks - 1 do
    for b = a to nblocks - 1 do
      let sum = ref 0.0 and count = ref 0 in
      for i = 0 to v - 1 do
        for j = i + 1 to v - 1 do
          let ba = block_of_dense.(i) and bb = block_of_dense.(j) in
          if ba >= 0 && bb >= 0 && min ba bb = a && max ba bb = b then begin
            sum := !sum +. Network_load.get net ~u:ids.(i) ~v:ids.(j);
            incr count
          end
        done
      done;
      let expect =
        if !count = 0 then 0.0 else !sum /. float_of_int !count
      in
      check_float
        (Printf.sprintf "block pair (%d,%d)" a b)
        expect
        table.((a * nblocks) + b)
    done
  done

(* --- Incremental NL maintenance (Nl_delta) ------------------------------------ *)

(* A successor snapshot: copy the link matrices, redraw the rows and
   symmetric columns of [touched] (node ids; all-live fixtures make
   node id = dense index), bump the time so the record is new. *)
let perturbed_snapshot rng (snap : Snapshot.t) touched =
  let bw = Matrix.copy snap.Snapshot.bw_mb_s in
  let lat = Matrix.copy snap.Snapshot.lat_us in
  let n = List.length snap.Snapshot.live in
  List.iter
    (fun i ->
      for j = 0 to n - 1 do
        if j <> i then begin
          let b = Rng.uniform rng ~lo:5.0 ~hi:118.0 in
          let l = Rng.uniform rng ~lo:70.0 ~hi:500.0 in
          Matrix.set bw i j b;
          Matrix.set bw j i b;
          Matrix.set lat i j l;
          Matrix.set lat j i l
        end
      done)
    touched;
  {
    snap with
    Snapshot.time = snap.Snapshot.time +. 0.01;
    bw_mb_s = bw;
    lat_us = lat;
  }

let random_touched rng n =
  let nt = 1 + Rng.int rng (max 1 (n / 3)) in
  List.sort_uniq compare (List.init nt (fun _ -> Rng.int rng n))

(* Chained derives with renorm_threshold 0 must stay bit-identical to
   a from-scratch build after every step — the acceptance bar for the
   incremental path. *)
let prop_nl_delta_exact_renorm_bit_identical =
  QCheck.Test.make
    ~name:"derive with renorm_threshold 0 is bit-identical to rebuild"
    ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.create seed in
      let snap0 = random_fixture rng in
      let n = List.length snap0.Snapshot.live in
      let net = ref (Network_load.of_snapshot snap0 ~weights) in
      let snap = ref snap0 in
      let ok = ref true in
      for _ = 1 to 1 + Rng.int rng 4 do
        let touched = random_touched rng n in
        let next = perturbed_snapshot rng !snap touched in
        (match
           Nl_delta.derive ~renorm_threshold:0.0 ~next ~weights ~touched !net
         with
        | None ->
          (* Wide delta (2·|touched| > V): rebuild and keep chaining. *)
          net := Network_load.of_snapshot next ~weights
        | Some patched ->
          net := patched;
          let rebuilt = Network_load.of_snapshot next ~weights in
          let m1 = Network_load.nl_matrix patched in
          let m2 = Network_load.nl_matrix rebuilt in
          for i = 0 to n - 1 do
            for j = 0 to n - 1 do
              if not (Float.equal (Matrix.get m1 i j) (Matrix.get m2 i j))
              then ok := false
            done
          done);
        snap := next
      done;
      !ok)

(* At the default threshold the incremental row-sum adjustments may
   drift between exact passes — but only by ulps (≲1e-9 relative). *)
let prop_nl_delta_default_threshold_drift_bounded =
  QCheck.Test.make
    ~name:"derive at the default threshold drifts at most 1e-9 relative"
    ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.create seed in
      let snap0 = random_fixture rng in
      let n = List.length snap0.Snapshot.live in
      let net = ref (Network_load.of_snapshot snap0 ~weights) in
      let snap = ref snap0 in
      let ok = ref true in
      for _ = 1 to 2 + Rng.int rng 6 do
        let touched = random_touched rng n in
        let next = perturbed_snapshot rng !snap touched in
        (match Nl_delta.derive ~next ~weights ~touched !net with
        | None -> net := Network_load.of_snapshot next ~weights
        | Some patched ->
          net := patched;
          let rebuilt = Network_load.of_snapshot next ~weights in
          let m1 = Network_load.nl_matrix patched in
          let m2 = Network_load.nl_matrix rebuilt in
          for i = 0 to n - 1 do
            for j = 0 to n - 1 do
              let a = Matrix.get m1 i j and b = Matrix.get m2 i j in
              if
                Float.abs (a -. b)
                > 1e-9 *. Float.max 1.0 (Float.abs b)
              then ok := false
            done
          done);
        snap := next
      done;
      !ok)

let test_nl_delta_touched_of_recovers_changed_nodes () =
  let rng = Rng.create 3 in
  let snap =
    fixture [ (8, 1.0); (8, 2.0); (8, 0.5); (12, 3.0); (8, 4.0); (8, 0.0) ]
  in
  let net = Network_load.of_snapshot snap ~weights in
  let next = perturbed_snapshot rng snap [ 1; 4 ] in
  match Nl_delta.touched_of ~prev:net ~next with
  | Some l ->
    (* The changed nodes themselves — not every row their symmetric
       columns brush (that would be all of them). *)
    Alcotest.(check (list int)) "changed nodes recovered" [ 1; 4 ] l
  | None -> Alcotest.fail "usable sets match, expected Some"

let test_nl_delta_membership_change_invalidates () =
  let rng = Rng.create 5 in
  let snap = fixture [ (8, 1.0); (8, 2.0); (8, 0.5); (12, 3.0) ] in
  let net = Network_load.of_snapshot snap ~weights in
  let next = Snapshot.restrict snap ~exclude:[ 2 ] in
  (match Nl_delta.touched_of ~prev:net ~next with
  | None -> ()
  | Some _ -> Alcotest.fail "node-down must invalidate touched_of");
  (match Nl_delta.derive ~next ~weights ~touched:[ 0 ] net with
  | None -> ()
  | Some _ -> Alcotest.fail "node-down must invalidate derive");
  (* Same membership but different weights: never patch. *)
  let next_w = perturbed_snapshot rng snap [ 0 ] in
  match
    Nl_delta.derive ~next:next_w ~weights:Weights.network_intensive
      ~touched:[ 0 ] net
  with
  | None -> ()
  | Some _ -> Alcotest.fail "weight change must invalidate derive"

let test_nl_delta_wide_delta_invalidates () =
  let rng = Rng.create 7 in
  let snap = fixture [ (8, 1.0); (8, 2.0); (8, 0.5); (12, 3.0) ] in
  let net = Network_load.of_snapshot snap ~weights in
  let next = perturbed_snapshot rng snap [ 0; 1; 2; 3 ] in
  match Nl_delta.derive ~next ~weights ~touched:[ 0; 1; 2; 3 ] net with
  | None -> ()
  | Some _ ->
    Alcotest.fail "touching more than half the rows must force a rebuild"

(* --- Model cache: derived bundles and Domain-safe counters -------------------- *)

let test_model_cache_get_derived_patches_forward () =
  let rng = Rng.create 17 in
  let snap =
    fixture [ (8, 1.0); (8, 2.0); (8, 0.5); (12, 3.0); (8, 4.0); (8, 0.0) ]
  in
  Model_cache.clear ();
  let b0 = Model_cache.get snap ~weights in
  let net0 = Model_cache.net b0 in
  let touched = [ 1; 3 ] in
  let next = perturbed_snapshot rng snap touched in
  let m0 = Model_cache.misses () in
  let b1 = Model_cache.get_derived next ~prev:snap ~touched ~weights in
  Alcotest.(check int) "derived counts as a miss" (m0 + 1)
    (Model_cache.misses ());
  Alcotest.(check bool) "network model patched in place" true
    (Model_cache.net b1 == net0);
  (* The perturbed snapshot shares [nodes]/[live] physically, so the
     compute-load and procs models (pure functions of those) are
     carried forward rather than rebuilt. *)
  Alcotest.(check bool) "compute-load model carried forward" true
    (Model_cache.loads b1 == Model_cache.loads b0);
  Alcotest.(check bool) "effective-procs model carried forward" true
    (Model_cache.pc b1 == Model_cache.pc b0);
  (* 2 of 6 rows exceeds the default renorm threshold, so this patch
     renormalized: bit-identical to a rebuild. *)
  let rebuilt = Network_load.of_snapshot next ~weights in
  let m1 = Network_load.nl_matrix (Model_cache.net b1) in
  let m2 = Network_load.nl_matrix rebuilt in
  let n = List.length snap.Snapshot.live in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if not (Float.equal (Matrix.get m1 i j) (Matrix.get m2 i j)) then
        Alcotest.failf "patched NL (%d,%d) differs from rebuild" i j
    done
  done;
  (* The predecessor's slot was evicted (its model was consumed). *)
  let m_before = Model_cache.misses () in
  ignore (Model_cache.get snap ~weights);
  Alcotest.(check int) "prev slot evicted" (m_before + 1)
    (Model_cache.misses ());
  (* The derived bundle itself is resident. *)
  let h_before = Model_cache.hits () in
  ignore (Model_cache.get next ~weights);
  Alcotest.(check int) "derived bundle cached" (h_before + 1)
    (Model_cache.hits ())

let test_model_cache_prime_derived () =
  let rng = Rng.create 19 in
  let snap =
    fixture [ (8, 1.0); (8, 2.0); (8, 0.5); (12, 3.0); (8, 4.0); (8, 0.0) ]
  in
  Model_cache.clear ();
  let b0 = Model_cache.get snap ~weights in
  let net0 = Model_cache.net b0 in
  let next = perturbed_snapshot rng snap [ 2 ] in
  (* prime diffs the readings itself — no touched list from the caller. *)
  Model_cache.prime_derived next ~prev:snap ~weights;
  let h0 = Model_cache.hits () in
  let b1 = Model_cache.get next ~weights in
  Alcotest.(check int) "primed bundle hits" (h0 + 1) (Model_cache.hits ());
  Alcotest.(check bool) "primed via the incremental patch, not a rebuild"
    true
    (Model_cache.net b1 == net0)

let test_model_cache_counters_domain_safe () =
  Model_cache.clear ();
  let snap = fixture [ (8, 1.0); (8, 2.0) ] in
  ignore (Model_cache.get snap ~weights);
  let h0 = Model_cache.hits () in
  let pool = Domain_pool.get 4 in
  Domain_pool.run pool (fun _w ->
      for _ = 1 to 500 do
        ignore (Model_cache.get snap ~weights)
      done);
  Alcotest.(check int) "no hit increments lost across domains" (h0 + 2000)
    (Model_cache.hits ())

(* --- Pruned candidate starts --------------------------------------------------- *)

let test_dense_sequential_fallback_pins () =
  Alcotest.(check int) "par_v_threshold value" 128 Dense_alloc.par_v_threshold;
  Alcotest.(check int) "below the threshold: sequential" 1
    (Dense_alloc.domains_for ~v:(Dense_alloc.par_v_threshold - 1) ~requested:8);
  Alcotest.(check int) "at the threshold: parallel" 8
    (Dense_alloc.domains_for ~v:Dense_alloc.par_v_threshold ~requested:8);
  Alcotest.(check int) "clamped to v" 200
    (Dense_alloc.domains_for ~v:200 ~requested:500);
  Alcotest.check_raises "rejects requested < 1"
    (Invalid_argument "Dense_alloc.scored_all: ndomains must be >= 1")
    (fun () -> ignore (Dense_alloc.domains_for ~v:200 ~requested:0))

(* Pruning only skips starts: each surviving candidate and its raw
   Eq. 4 costs must be bit-identical to its exhaustive counterpart
   (only the per-candidate-set normalization sees fewer rivals). *)
let prop_pruned_subset_costs_exact =
  QCheck.Test.make
    ~name:"Top_k candidates are a subset with bit-identical raw costs"
    ~count:100
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.create seed in
      let snap = random_fixture rng in
      let request = random_request rng in
      let cl = Compute_load.of_snapshot snap ~weights in
      let nl = Network_load.of_snapshot snap ~weights in
      let capacity = capacity_of snap request in
      let v = List.length (Network_load.usable nl) in
      let k = 1 + Rng.int rng (max 1 (v - 1)) in
      let pruned =
        Dense_alloc.scored_all
          ~starts:(Dense_alloc.Top_k k)
          ~loads:cl ~net:nl ~capacity ~request ()
      in
      let all =
        Dense_alloc.scored_all ~starts:Dense_alloc.All ~loads:cl ~net:nl
          ~capacity ~request ()
      in
      List.length pruned = min k v
      && (* ascending start order, like the exhaustive table *)
      (let starts =
         List.map (fun (s : Select.scored) -> s.Select.candidate.Candidate.start)
           pruned
       in
       starts = List.sort compare starts)
      && List.for_all
           (fun (p : Select.scored) ->
             match
               List.find_opt
                 (fun (a : Select.scored) ->
                   a.Select.candidate.Candidate.start
                   = p.Select.candidate.Candidate.start)
                 all
             with
             | None -> false
             | Some a ->
               a.Select.candidate = p.Select.candidate
               && Float.equal a.Select.compute_cost p.Select.compute_cost
               && Float.equal a.Select.network_cost p.Select.network_cost)
           pruned)

let prop_pruned_topk_ge_v_is_exhaustive =
  QCheck.Test.make ~name:"Top_k with k >= V degenerates to All, bit-identical"
    ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.create seed in
      let snap = random_fixture rng in
      let request = random_request rng in
      let cl = Compute_load.of_snapshot snap ~weights in
      let nl = Network_load.of_snapshot snap ~weights in
      let capacity = capacity_of snap request in
      let v = List.length (Network_load.usable nl) in
      let pruned =
        Dense_alloc.scored_all
          ~starts:(Dense_alloc.Top_k (v + Rng.int rng 3))
          ~loads:cl ~net:nl ~capacity ~request ()
      in
      let all =
        Dense_alloc.scored_all ~starts:Dense_alloc.All ~loads:cl ~net:nl
          ~capacity ~request ()
      in
      List.length pruned = List.length all
      && List.for_all2
           (fun (a : Select.scored) (b : Select.scored) ->
             a.Select.candidate = b.Select.candidate
             && Float.equal a.Select.total b.Select.total)
           pruned all)

(* The pruned winner may legitimately differ from the exhaustive one
   (Algorithm 2's normalization is per candidate set), but judged under
   the EXHAUSTIVE normalization it must stay close to the true optimum.
   Measured at the property's own distribution (V in 40..80, k in
   {4,8,16,32}): worst regret 0.025 over 6000 samples — the bound
   carries ~6× headroom. (On 3-8 node toy fixtures regret is
   intrinsically coarse — pruning there isn't the operating regime.) *)
let pruned_regret_bound = 0.15

let prop_pruned_regret_bounded =
  QCheck.Test.make
    ~name:"Top_k winner's exhaustively-normalized regret is bounded"
    ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.create seed in
      let snap = sized_random_fixture rng (40 + Rng.int rng 41) in
      let request = random_request rng in
      let cl = Compute_load.of_snapshot snap ~weights in
      let nl = Network_load.of_snapshot snap ~weights in
      let capacity = capacity_of snap request in
      let v = List.length (Network_load.usable nl) in
      let k = [| 4; 8; 16; 32 |].(Rng.int rng 4) in
      let k = min k (v - 1) in
      let pw =
        Dense_alloc.best
          ~starts:(Dense_alloc.Top_k k)
          ~loads:cl ~net:nl ~capacity ~request ()
      in
      let all =
        Dense_alloc.scored_all ~starts:Dense_alloc.All ~loads:cl ~net:nl
          ~capacity ~request ()
      in
      match
        List.find_opt
          (fun (a : Select.scored) ->
            a.Select.candidate.Candidate.start
            = pw.Select.candidate.Candidate.start)
          all
      with
      | None -> false
      | Some exh ->
        let best_total =
          List.fold_left
            (fun acc (s : Select.scored) -> Float.min acc s.Select.total)
            infinity all
        in
        exh.Select.total -. best_total <= pruned_regret_bound)

let test_pruned_never_materializes_nl () =
  let rng = Rng.create 29 in
  let snap = random_fixture rng in
  let cl = Compute_load.of_snapshot snap ~weights in
  let nl = Network_load.of_snapshot snap ~weights in
  let request = Request.make ~ppn:4 ~procs:8 () in
  let capacity = capacity_of snap request in
  ignore
    (Dense_alloc.scored_all
       ~starts:(Dense_alloc.Top_k 2)
       ~loads:cl ~net:nl ~capacity ~request ());
  Alcotest.(check bool) "factored reads only: no O(V²) NL matrix" true
    (match Network_load.nl_cached nl with None -> true | Some _ -> false)

let test_pruned_rejects_nonfinite_nl () =
  let snap = fixture [ (8, 1.0); (8, 2.0); (8, 0.5) ] in
  Matrix.set snap.Snapshot.lat_us 0 1 infinity;
  Matrix.set snap.Snapshot.lat_us 1 0 infinity;
  let cl = Compute_load.of_snapshot snap ~weights in
  let nl = Network_load.of_snapshot snap ~weights in
  let request = Request.make ~ppn:4 ~procs:8 () in
  let capacity = capacity_of snap request in
  match
    Dense_alloc.scored_all
      ~starts:(Dense_alloc.Top_k 2)
      ~loads:cl ~net:nl ~capacity ~request ()
  with
  | _ -> Alcotest.fail "expected Invalid_argument on non-finite NL"
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      "message names the model" true
      (String.length msg >= 13 && String.sub msg 0 13 = "Dense_alloc.s")

let test_starts_parse_and_default_knob () =
  (match Dense_alloc.parse_starts "All" with
  | Ok Dense_alloc.All -> ()
  | _ -> Alcotest.fail {|"All" should parse (case-insensitive)|});
  (match Dense_alloc.parse_starts " 8 " with
  | Ok (Dense_alloc.Top_k 8) -> ()
  | _ -> Alcotest.fail {|" 8 " should parse as Top_k 8|});
  (match Dense_alloc.parse_starts "0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "0 starts must be rejected");
  (match Dense_alloc.parse_starts "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must be rejected");
  Alcotest.(check string) "label all" "all"
    (Dense_alloc.starts_label Dense_alloc.All);
  Alcotest.(check string) "label k" "8"
    (Dense_alloc.starts_label (Dense_alloc.Top_k 8));
  let before = Dense_alloc.default_starts () in
  Fun.protect
    ~finally:(fun () -> Dense_alloc.set_default_starts before)
    (fun () ->
      Dense_alloc.set_default_starts (Dense_alloc.Top_k 2);
      let snap = fixture [ (8, 1.0); (8, 2.0); (8, 0.5); (12, 3.0) ] in
      let cl = Compute_load.of_snapshot snap ~weights in
      let nl = Network_load.of_snapshot snap ~weights in
      let request = Request.make ~ppn:4 ~procs:8 () in
      let capacity = capacity_of snap request in
      let scored =
        Dense_alloc.scored_all ~loads:cl ~net:nl ~capacity ~request ()
      in
      Alcotest.(check int) "global default applies" 2 (List.length scored);
      Alcotest.check_raises "rejects Top_k 0"
        (Invalid_argument "Dense_alloc: Top_k starts must be >= 1")
        (fun () -> Dense_alloc.set_default_starts (Dense_alloc.Top_k 0)))

(* --- Engine routing (Policies.Auto → Hierarchical) ----------------------------- *)

let test_policies_auto_routes_to_hierarchical () =
  let rng = Rng.create 99 in
  let snap = random_fixture rng in
  let request = Request.make ~ppn:4 ~procs:10 () in
  let before = Policies.auto_hierarchical_threshold () in
  Fun.protect
    ~finally:(fun () -> Policies.set_auto_hierarchical_threshold before)
    (fun () ->
      Policies.set_auto_hierarchical_threshold 1;
      Model_cache.clear ();
      let run engine =
        Policies.allocate ~engine ~policy:Policies.Network_load_aware
          ~snapshot:snap ~weights ~request ~rng:(Rng.create 1) ()
      in
      let auto = run Policies.Auto in
      let grouped = run Policies.Grouped in
      let flat = run Policies.Flat in
      Alcotest.(check bool) "above the threshold Auto is Grouped" true
        (auto = grouped);
      (match auto with
      | Ok a ->
        Alcotest.(check string) "keeps the requesting policy's label"
          "network-load-aware" a.Allocation.policy
      | Error _ -> Alcotest.fail "auto allocation failed");
      (match flat with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "flat allocation failed");
      Alcotest.check_raises "threshold knob rejects < 1"
        (Invalid_argument
           "Policies.set_auto_hierarchical_threshold: must be >= 1")
        (fun () -> Policies.set_auto_hierarchical_threshold 0))

let prop_compute_load_nonnegative =
  QCheck.Test.make ~name:"compute load is non-negative" ~count:100
    (QCheck.make loads_gen)
    (fun loads ->
      let snap = fixture (List.map (fun l -> (8, l)) loads) in
      let cl = Compute_load.of_snapshot snap ~weights in
      List.for_all (fun n -> Compute_load.get cl ~node:n >= -1e-12)
        (Compute_load.usable cl))

let suites =
  [
    ( "core.saw",
      [
        Alcotest.test_case "normalize sums to one" `Quick test_saw_normalize_sums_to_one;
        Alcotest.test_case "zero column" `Quick test_saw_normalize_zero_column;
        Alcotest.test_case "tiny negative ok" `Quick test_saw_normalize_tiny_negative_ok;
        Alcotest.test_case "rejects negative" `Quick test_saw_normalize_rejects_negative;
        Alcotest.test_case "directionalize" `Quick test_saw_directionalize;
        Alcotest.test_case "combine" `Quick test_saw_combine;
        Alcotest.test_case "ragged rejected" `Quick test_saw_combine_ragged;
        Alcotest.test_case "constant column neutral" `Quick
          test_saw_constant_column_neutral;
      ] );
    ( "core.weights_request_allocation",
      [
        Alcotest.test_case "paper weights sum" `Quick test_weights_paper_sum;
        Alcotest.test_case "weights validate" `Quick test_weights_validate;
        Alcotest.test_case "request defaults" `Quick test_request_defaults;
        Alcotest.test_case "ppn override" `Quick test_request_ppn_override;
        Alcotest.test_case "request validation" `Quick test_request_validation;
        Alcotest.test_case "allocation accessors" `Quick test_allocation_accessors;
        Alcotest.test_case "allocation validation" `Quick test_allocation_validation;
      ] );
    ( "core.compute_load",
      [
        Alcotest.test_case "orders by load" `Quick test_compute_load_orders_by_load;
        Alcotest.test_case "prefers big nodes" `Quick test_compute_load_prefers_big_nodes;
        Alcotest.test_case "total" `Quick test_compute_load_total;
        Alcotest.test_case "unusable rejected" `Quick test_compute_load_unusable_rejected;
        Alcotest.test_case "raw 1m load" `Quick test_compute_load_cpu_load_1m;
        qcheck prop_compute_load_nonnegative;
      ] );
    ( "core.network_load",
      [
        Alcotest.test_case "uniform" `Quick test_network_load_zero_when_uniform_full_bw;
        Alcotest.test_case "prefers good links" `Quick test_network_load_prefers_good_links;
        Alcotest.test_case "symmetry" `Quick test_network_load_symmetry;
        Alcotest.test_case "edge totals" `Quick test_network_load_edges_totals;
        Alcotest.test_case "raw reads match the matrix" `Quick
          test_nl_raw_matches_matrix;
        Alcotest.test_case "dense degrees match brute force" `Quick
          test_nl_dense_degrees_match_brute_force;
        Alcotest.test_case "block mean table matches brute force" `Quick
          test_nl_block_mean_table_matches_brute_force;
      ] );
    ( "core.nl_delta",
      [
        qcheck prop_nl_delta_exact_renorm_bit_identical;
        qcheck prop_nl_delta_default_threshold_drift_bounded;
        Alcotest.test_case "touched_of recovers changed nodes" `Quick
          test_nl_delta_touched_of_recovers_changed_nodes;
        Alcotest.test_case "membership/weight change invalidates" `Quick
          test_nl_delta_membership_change_invalidates;
        Alcotest.test_case "wide delta invalidates" `Quick
          test_nl_delta_wide_delta_invalidates;
      ] );
    ( "core.effective_procs",
      [
        Alcotest.test_case "idle" `Quick test_eq3_idle;
        Alcotest.test_case "partial" `Quick test_eq3_partial;
        Alcotest.test_case "modulo wrap" `Quick test_eq3_modulo_wrap;
        Alcotest.test_case "bounds" `Quick test_eq3_bounds;
        Alcotest.test_case "of snapshot" `Quick test_eq3_of_snapshot;
      ] );
    ( "core.candidate",
      [
        Alcotest.test_case "starts with start" `Quick test_candidate_starts_with_start;
        Alcotest.test_case "greedy prefers low cost" `Quick
          test_candidate_greedy_prefers_low_cost;
        Alcotest.test_case "network steers selection" `Quick
          test_candidate_network_steers_selection;
        Alcotest.test_case "round-robin overflow" `Quick
          test_candidate_round_robin_overflow;
        Alcotest.test_case "addition cost" `Quick test_candidate_addition_cost;
        Alcotest.test_case "generate_all count" `Quick test_candidate_all_count;
        qcheck prop_candidate_nodes_distinct;
      ] );
    ( "core.select",
      [
        Alcotest.test_case "minimizes total" `Quick test_select_minimizes_total;
        Alcotest.test_case "scores all" `Quick test_select_scores_all;
        Alcotest.test_case "alpha=1 load only" `Quick test_select_alpha_one_is_load_only;
      ] );
    ( "core.policies",
      [
        Alcotest.test_case "satisfy request" `Quick test_policies_satisfy_request;
        Alcotest.test_case "load-aware picks quiet" `Quick test_policy_load_aware_picks_quiet;
        Alcotest.test_case "sequential consecutive" `Quick test_policy_sequential_consecutive;
        Alcotest.test_case "random uses rng" `Quick test_policy_random_uses_rng;
        Alcotest.test_case "network-aware deterministic" `Quick
          test_policy_network_aware_deterministic;
        Alcotest.test_case "no usable nodes" `Quick test_policy_no_usable_nodes;
        Alcotest.test_case "oversubscribes" `Quick test_policy_oversubscribes_when_needed;
        Alcotest.test_case "hierarchical via policies" `Quick
          test_policy_hierarchical_via_policies;
        Alcotest.test_case "names roundtrip" `Quick test_policy_names_roundtrip;
        Alcotest.test_case "auto engine routes to hierarchical" `Quick
          test_policies_auto_routes_to_hierarchical;
        qcheck prop_nl_aware_covers_any_loads;
      ] );
    ( "core.dense_alloc",
      [
        qcheck prop_dense_matches_naive;
        qcheck prop_dense_scored_table_bit_identical;
        qcheck prop_dense_parallel_bit_identical;
        Alcotest.test_case "oversized ndomains clamps to the pool" `Quick
          test_dense_parallel_oversized_ndomains;
        Alcotest.test_case "rejects non-finite NL" `Quick
          test_dense_rejects_nonfinite_nl;
        Alcotest.test_case "sequential fallback below par_v_threshold" `Quick
          test_dense_sequential_fallback_pins;
        qcheck prop_pruned_subset_costs_exact;
        qcheck prop_pruned_topk_ge_v_is_exhaustive;
        qcheck prop_pruned_regret_bounded;
        Alcotest.test_case "pruned path never materializes NL" `Quick
          test_pruned_never_materializes_nl;
        Alcotest.test_case "pruned path rejects non-finite NL" `Quick
          test_pruned_rejects_nonfinite_nl;
        Alcotest.test_case "starts parse + default knob" `Quick
          test_starts_parse_and_default_knob;
      ] );
    ( "core.domain_pool",
      [
        Alcotest.test_case "runs every worker" `Quick
          test_domain_pool_runs_every_worker;
        Alcotest.test_case "propagates exceptions" `Quick
          test_domain_pool_propagates_exceptions;
        Alcotest.test_case "default knob" `Quick test_domain_pool_default_knob;
      ] );
    ( "core.model_cache",
      [
        Alcotest.test_case "hit and invalidation" `Quick
          test_model_cache_hit_and_invalidation;
        Alcotest.test_case "models match direct build" `Quick
          test_model_cache_models_match_direct_build;
        Alcotest.test_case "get_derived patches forward" `Quick
          test_model_cache_get_derived_patches_forward;
        Alcotest.test_case "prime_derived warms the next tick" `Quick
          test_model_cache_prime_derived;
        Alcotest.test_case "counters are domain-safe" `Quick
          test_model_cache_counters_domain_safe;
      ] );
    ( "core.brute_force",
      [
        Alcotest.test_case "matches exhaustive" `Quick
          test_brute_force_matches_exhaustive_small;
        Alcotest.test_case "greedy >= optimal" `Quick
          test_greedy_never_better_than_brute_force;
        Alcotest.test_case "guard" `Quick test_brute_force_guard;
      ] );
    ( "core.broker",
      [
        Alcotest.test_case "allocates by default" `Quick test_broker_allocates_by_default;
        Alcotest.test_case "recommends waiting" `Quick test_broker_recommends_waiting;
        Alcotest.test_case "threshold not exceeded" `Quick
          test_broker_threshold_not_exceeded;
        Alcotest.test_case "mean load per core" `Quick test_broker_mean_load_per_core;
        Alcotest.test_case "excludes stale records" `Quick
          test_broker_excludes_stale_records;
        Alcotest.test_case "all stale is an error" `Quick
          test_broker_all_stale_is_an_error;
        Alcotest.test_case "stale exclusions audited" `Quick
          test_broker_stale_exclusions_audited;
      ] );
  ]

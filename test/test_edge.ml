(* Cross-library edge cases: boundaries, fallbacks, and less-travelled
   configuration paths. *)

module Rng = Rm_stats.Rng
module Running_means = Rm_stats.Running_means
module Sim = Rm_engine.Sim
module Cluster = Rm_cluster.Cluster
module Topology = Rm_cluster.Topology
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module Flow_gen = Rm_workload.Flow_gen
module System = Rm_monitor.System
module Snapshot = Rm_monitor.Snapshot
module Request = Rm_core.Request
module Weights = Rm_core.Weights
module Policies = Rm_core.Policies
module Broker = Rm_core.Broker
module Allocation = Rm_core.Allocation
module Compute_load = Rm_core.Compute_load
module Network_load = Rm_core.Network_load
module Candidate = Rm_core.Candidate
module Select = Rm_core.Select
module Executor = Rm_mpisim.Executor
module Profiler = Rm_mpisim.Profiler
module Mapping = Rm_mpisim.Mapping
module Synthetic = Rm_apps.Synthetic

let check_float = Alcotest.(check (float 1e-9))

let small_world ?(scenario = Scenario.quiet) ?(seed = 1) () =
  let cluster = Cluster.homogeneous ~cores:8 ~nodes_per_switch:[ 3; 3 ] () in
  World.create ~cluster ~scenario ~seed

let truth world = Snapshot.of_truth ~time:(World.now world) ~world

(* --- Eq. 3 capacity used when ppn omitted -------------------------------- *)

let test_allocate_without_ppn_uses_pc () =
  let w = small_world () in
  World.advance w ~now:600.0;
  let snap = truth w in
  let request = Request.make ~procs:12 () in
  match
    Policies.allocate ~policy:Policies.Network_load_aware ~snapshot:snap
      ~weights:Weights.paper_default ~request ~rng:(Rng.create 1) ()
  with
  | Error _ -> Alcotest.fail "allocation failed"
  | Ok a ->
    Alcotest.(check int) "covers" 12 (Allocation.total_procs a);
    (* Quiet cluster: pc_v ~ 8, so two nodes suffice. *)
    Alcotest.(check bool) "used node capacity" true (Allocation.node_count a <= 3)

(* --- Candidate / Select boundaries ----------------------------------------- *)

let test_candidate_single_usable_node () =
  let w = small_world () in
  World.advance w ~now:60.0;
  let snap = { (truth w) with Snapshot.live = [ 2 ] } in
  let weights = Weights.paper_default in
  let loads = Compute_load.of_snapshot snap ~weights in
  let net = Network_load.of_snapshot snap ~weights in
  let request = Request.make ~ppn:4 ~procs:9 () in
  let c =
    Candidate.generate ~start:2 ~loads ~net ~capacity:(fun _ -> 4) ~request
  in
  Alcotest.(check (list int)) "only node, oversubscribed" [ 2 ] c.Candidate.nodes;
  Alcotest.(check int) "all procs on it" 9 (Candidate.total_procs c);
  let best = Select.best ~candidates:[ c ] ~loads ~net ~request in
  Alcotest.(check int) "sole candidate wins" 2 best.Select.candidate.Candidate.start

(* --- Broker threshold boundary ---------------------------------------------- *)

let test_broker_boundary_allocates_at_threshold () =
  let w = small_world () in
  World.advance w ~now:600.0;
  let snap = truth w in
  let m = Broker.mean_load_per_core snap ~weights:Weights.paper_default in
  (* Threshold exactly at the measured value: paper says wait only when
     load is extremely high, so the boundary allocates. *)
  let config =
    { Broker.default_config with Broker.wait_threshold = Some m }
  in
  match
    Broker.decide ~config ~snapshot:snap
      ~request:(Request.make ~ppn:4 ~procs:8 ())
      ~rng:(Rng.create 2)
  with
  | Ok (Broker.Allocated _) -> ()
  | Ok (Broker.Wait _) -> Alcotest.fail "boundary should allocate"
  | Error _ -> Alcotest.fail "error"

(* --- World misc ------------------------------------------------------------- *)

let test_world_register_job_validation () =
  let w = small_world () in
  Alcotest.(check bool) "negative load rejected" true
    (try ignore (World.register_job w ~load:[ (0, -1.0) ] ~flows:[]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad node rejected" true
    (try ignore (World.register_job w ~load:[ (99, 1.0) ] ~flows:[]); false
     with Invalid_argument _ -> true)

let test_flow_gen_switch_local_bias () =
  let params =
    { Flow_gen.default with
      Flow_gen.arrival_rate_per_s = 1.0;
      p_external = 0.0;
      p_same_switch = 1.0 }
  in
  let fg = Flow_gen.create ~rng:(Rng.create 4) ~node_count:12 ~params in
  let switch_of n = n / 6 in
  Flow_gen.advance fg ~now:600.0 ~switch_of_node:switch_of;
  List.iter
    (fun (f : Rm_netsim.Flow.t) ->
      match f.Rm_netsim.Flow.dst with
      | Rm_netsim.Flow.Node d ->
        Alcotest.(check int) "switch-local" (switch_of f.Rm_netsim.Flow.src)
          (switch_of d)
      | Rm_netsim.Flow.External -> Alcotest.fail "no external expected")
    (Flow_gen.active_flows fg)

(* --- Monitor cadence override ------------------------------------------------ *)

let test_cadence_override_probe_freshness () =
  let sim = Sim.create () in
  let w = small_world ~scenario:Scenario.normal () in
  let cadence =
    { System.default_cadence with System.bandwidth_period = 30.0 }
  in
  let sys =
    System.start ~sim ~world:w ~rng:(Rng.create 5) ~cadence ~until:5000.0 ()
  in
  Sim.run_until sim 100.0;
  let snap = System.snapshot sys ~time:100.0 in
  (* With 30 s probes, bandwidth must already be measured at t=100. *)
  let bw = Rm_stats.Matrix.get snap.Snapshot.bw_mb_s 0 5 in
  Alcotest.(check bool) "already probed" true (Float.is_finite bw && bw > 0.0)

(* --- Running means custom spans ---------------------------------------------- *)

let test_running_means_custom_spans () =
  let rm = Running_means.create_spans ~m1:10.0 ~m5:20.0 ~m15:40.0 in
  for i = 0 to 50 do
    Running_means.push rm ~time:(float_of_int i) ~value:(if i > 45 then 10.0 else 0.0)
  done;
  match Running_means.view rm with
  | Some v ->
    Alcotest.(check bool) "short window reacts hardest" true
      (v.Running_means.m1 > v.Running_means.m5
      && v.Running_means.m5 > v.Running_means.m15)
  | None -> Alcotest.fail "no view"

(* --- Executor / profiler corner cases ------------------------------------------ *)

let test_executor_compute_only_no_comm () =
  let w = small_world () in
  let a =
    Allocation.make ~policy:"t"
      ~entries:[ { Allocation.node = 0; procs = 4 } ]
  in
  let app = Synthetic.compute_only ~ranks:4 ~iterations:10 () in
  let stats = Executor.run ~world:w ~allocation:a ~app () in
  check_float "zero comm" 0.0 stats.Executor.comm_time_s;
  check_float "zero comm fraction" 0.0 stats.Executor.comm_fraction;
  check_float "no bytes" 0.0 stats.Executor.inter_node_bytes

let test_profiler_compute_only_suggests_high_alpha () =
  let w = small_world () in
  let a =
    Allocation.make ~policy:"t"
      ~entries:[ { Allocation.node = 0; procs = 2 }; { Allocation.node = 1; procs = 2 } ]
  in
  let p =
    Profiler.profile ~world:w ~allocation:a
      ~app:(Synthetic.compute_only ~ranks:4 ~iterations:10 ())
      ()
  in
  check_float "pure compute" 0.0 p.Profiler.comm_fraction;
  check_float "alpha clamped at 0.9" 0.9 p.Profiler.suggested_alpha

let test_mapping_sample_override () =
  let app = Synthetic.ring ~ranks:4 ~iterations:100 ~bytes:10.0 () in
  let t1 = Mapping.traffic ~app ~sample_iterations:1 () in
  let t64 = Mapping.traffic ~app () in
  Alcotest.(check int) "same pairs" (List.length t64) (List.length t1);
  List.iter2
    (fun (_, a) (_, b) -> check_float "constant app: same mean" a b)
    t1 t64

(* --- Hierarchical single-switch fallback ----------------------------------------- *)

let test_hierarchical_single_switch_falls_back () =
  let cluster = Cluster.homogeneous ~cores:8 ~nodes_per_switch:[ 6 ] () in
  let w = World.create ~cluster ~scenario:Scenario.quiet ~seed:3 in
  World.advance w ~now:600.0;
  let snap = truth w in
  match
    Rm_core.Hierarchical.allocate ~snapshot:snap ~weights:Weights.paper_default
      ~request:(Request.make ~ppn:4 ~procs:8 ()) ()
  with
  | Ok a ->
    Alcotest.(check string) "still labelled" "hierarchical" a.Allocation.policy;
    Alcotest.(check int) "covers" 8 (Allocation.total_procs a)
  | Error _ -> Alcotest.fail "fallback failed"

(* --- Federated WAN contention ------------------------------------------------------ *)

let test_wan_is_shared_bottleneck () =
  let cluster =
    Cluster.federated ~cores:8 ~wan_mb_s:50.0
      ~sites:[ ("a", [ 3 ]); ("b", [ 3 ]) ]
      ()
  in
  let network = Rm_netsim.Network.create (Cluster.topology cluster) in
  (* Two cross-site probes simultaneously share the 50 MB/s WAN pair. *)
  let rates =
    Rm_netsim.Network.rates_with_extra network ~extra:[| (0, 3); (1, 4) |]
  in
  check_float "half each" 25.0 rates.(0);
  check_float "half each (2)" 25.0 rates.(1)

let suites =
  [
    ( "edge.allocation",
      [
        Alcotest.test_case "ppn omitted uses Eq.3" `Quick
          test_allocate_without_ppn_uses_pc;
        Alcotest.test_case "single usable node" `Quick test_candidate_single_usable_node;
        Alcotest.test_case "broker boundary" `Quick
          test_broker_boundary_allocates_at_threshold;
        Alcotest.test_case "hierarchical fallback" `Quick
          test_hierarchical_single_switch_falls_back;
      ] );
    ( "edge.workload",
      [
        Alcotest.test_case "register_job validation" `Quick
          test_world_register_job_validation;
        Alcotest.test_case "switch-local flows" `Quick test_flow_gen_switch_local_bias;
        Alcotest.test_case "running-mean custom spans" `Quick
          test_running_means_custom_spans;
      ] );
    ( "edge.monitor",
      [
        Alcotest.test_case "cadence override" `Quick
          test_cadence_override_probe_freshness;
      ] );
    ( "edge.mpisim",
      [
        Alcotest.test_case "compute-only no comm" `Quick
          test_executor_compute_only_no_comm;
        Alcotest.test_case "profiler high alpha" `Quick
          test_profiler_compute_only_suggests_high_alpha;
        Alcotest.test_case "mapping sample override" `Quick test_mapping_sample_override;
        Alcotest.test_case "wan shared bottleneck" `Quick test_wan_is_shared_bottleneck;
      ] );
  ]

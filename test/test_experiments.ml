(* Integration tests for rm_experiments: harness protocol, end-to-end
   monitor -> allocator -> executor runs, experiment generators. *)

module Harness = Rm_experiments.Harness
module Sweep = Rm_experiments.Sweep
module Traces = Rm_experiments.Traces
module Bandwidth_map = Rm_experiments.Bandwidth_map
module Render = Rm_experiments.Render
module Policies = Rm_core.Policies
module Weights = Rm_core.Weights
module Request = Rm_core.Request
module Allocation = Rm_core.Allocation
module Scenario = Rm_workload.Scenario
module Cluster = Rm_cluster.Cluster
module Matrix = Rm_stats.Matrix
module Timeseries = Rm_stats.Timeseries

let small_cluster () =
  Cluster.homogeneous ~cores:8 ~freq_ghz:3.0 ~nodes_per_switch:[ 4; 4 ] ()

let small_env ?(scenario = Scenario.normal) ?(seed = 3) () =
  let env =
    Harness.make_env ~cluster:(small_cluster ()) ~scenario ~seed
      ~horizon:50_000.0 ()
  in
  Harness.warm env;
  env

let app_of ~ranks =
  Rm_apps.Minimd.app
    ~config:{ (Rm_apps.Minimd.default_config ~s:8) with Rm_apps.Minimd.steps = 20 }
    ~ranks

(* --- Render -------------------------------------------------------------- *)

let test_render_table_alignment () =
  let s =
    Render.table_str ~header:[ "a"; "bb" ]
      ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let lines = String.split_on_char '\n' s in
  (* header + rule + 2 rows + trailing empty fragment. *)
  Alcotest.(check int) "5 fragments" 5 (List.length lines);
  Alcotest.(check bool) "has rule" true
    (String.exists (fun c -> c = '-') (List.nth lines 1))

let test_render_table_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Render.table: ragged row")
    (fun () -> ignore (Render.table_str ~header:[ "a" ] ~rows:[ [ "1"; "2" ] ]))

let test_render_sparkline () =
  Alcotest.(check int) "one char per point" 5
    (String.length (Render.sparkline [| 1.0; 2.0; 3.0; 2.0; 1.0 |]));
  Alcotest.(check string) "empty" "" (Render.sparkline [||])

let test_render_heatmap_scale () =
  let m = Matrix.square 2 ~init:1.0 in
  Matrix.set m 0 1 5.0;
  let s = Render.heatmap_str ~values:m () in
  Alcotest.(check bool) "mentions scale" true
    (String.length s > 0
    && String.split_on_char '\n' s
       |> List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "scale"))

(* --- Harness -------------------------------------------------------------- *)

let test_harness_warm_populates_monitor () =
  let env = small_env () in
  let snap = Harness.snapshot env in
  Alcotest.(check int) "8 usable nodes" 8
    (List.length (Rm_monitor.Snapshot.usable snap))

let test_harness_run_app () =
  let env = small_env () in
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:8 () in
  let r =
    Harness.run_app env ~policy:Policies.Network_load_aware
      ~weights:Weights.paper_default ~request ~app_of
  in
  Alcotest.(check int) "8 procs placed" 8 (Allocation.total_procs r.Harness.allocation);
  Alcotest.(check bool) "time positive" true
    (r.Harness.stats.Rm_mpisim.Executor.total_time_s > 0.0);
  Alcotest.(check bool) "group metrics sane" true
    (r.Harness.group_latency_us >= 0.0 && r.Harness.group_bw_complement >= 0.0)

let test_harness_compare_runs_all_policies () =
  let env = small_env () in
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:8 () in
  let runs =
    Harness.compare_policies env ~weights:Weights.paper_default ~request ~app_of
      ~gap_s:5.0 ()
  in
  Alcotest.(check int) "four runs" 4 (List.length runs);
  Alcotest.(check (list string)) "paper order"
    [ "random"; "sequential"; "load-aware"; "network-load-aware" ]
    (List.map (fun (p, _) -> Policies.name p) runs)

let test_harness_gains () =
  let g = Harness.gains_vs ~baseline_times:[| 10.0; 10.0 |] ~ours_times:[| 5.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "50%" 50.0 g;
  let s = Harness.summarize_gains [| 10.0; 20.0; 60.0 |] in
  Alcotest.(check (float 1e-9)) "avg" 30.0 s.Harness.average;
  Alcotest.(check (float 1e-9)) "median" 20.0 s.Harness.median;
  Alcotest.(check (float 1e-9)) "max" 60.0 s.Harness.maximum

let test_harness_time_advances () =
  let env = small_env () in
  let w = Harness.world env in
  let t0 = Rm_workload.World.now w in
  Harness.idle env ~seconds:100.0;
  Alcotest.(check bool) "idle advances" true (Rm_workload.World.now w >= t0 +. 100.0)

(* --- End-to-end: ours beats random on a contended cluster ------------------ *)

let test_e2e_nl_aware_beats_random () =
  (* Averaged over repetitions on a busy cluster, the paper's allocator
     must beat random allocation. *)
  let env = small_env ~scenario:Scenario.busy ~seed:11 () in
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:8 () in
  let total = ref 0.0 and total_random = ref 0.0 in
  for _ = 1 to 3 do
    let runs =
      Harness.compare_policies env ~weights:Weights.paper_default ~request
        ~app_of ~gap_s:10.0 ()
    in
    List.iter
      (fun (p, (r : Harness.run_result)) ->
        let t = r.Harness.stats.Rm_mpisim.Executor.total_time_s in
        match p with
        | Policies.Network_load_aware -> total := !total +. t
        | Policies.Random -> total_random := !total_random +. t
        | Policies.Sequential | Policies.Load_aware
        | Policies.Hierarchical -> ())
      runs
  done;
  Alcotest.(check bool) "ours faster than random" true (!total < !total_random)

(* --- Sweep ---------------------------------------------------------------- *)

let tiny_spec seed : Sweep.spec =
  {
    Sweep.label = "tiny";
    size_label = "s";
    procs_list = [ 8 ];
    sizes = [ 8 ];
    reps = 2;
    ppn = 4;
    alpha = 0.3;
    weights = Weights.paper_default;
    scenario = Scenario.normal;
    seed;
    app_of =
      (fun ~size ~ranks ->
        Rm_apps.Minimd.app
          ~config:
            { (Rm_apps.Minimd.default_config ~s:size) with Rm_apps.Minimd.steps = 10 }
          ~ranks);
  }

let test_sweep_records_complete () =
  let result = Sweep.run (tiny_spec 5) in
  (* 1 procs x 1 size x 2 reps x 4 policies. *)
  Alcotest.(check int) "8 records" 8 (List.length result.Sweep.records);
  List.iter
    (fun policy ->
      let times = Sweep.cell_times result ~procs:8 ~size:8 ~policy in
      Alcotest.(check int) (Policies.name policy) 2 (Array.length times))
    Policies.all

let test_sweep_renders () =
  let result = Sweep.run (tiny_spec 6) in
  let times = Sweep.render_times result ~title:"t" in
  Alcotest.(check bool) "times mentions procs" true
    (String.length times > 0);
  let gains = Sweep.render_gains result ~title:"g" in
  Alcotest.(check bool) "gains mentions load-aware" true
    (String.length gains > 0);
  let fig5 = Sweep.render_load_per_core result ~title:"f" in
  Alcotest.(check bool) "fig5 nonempty" true (String.length fig5 > 0)

let test_sweep_csv () =
  let result = Sweep.run (tiny_spec 8) in
  let csv = Sweep.to_csv result in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (* header + 8 records. *)
  Alcotest.(check int) "rows" 9 (List.length lines);
  Alcotest.(check bool) "header fields" true
    (String.length (List.hd lines) > 0
    && String.split_on_char ',' (List.hd lines) |> List.length = 10)

let test_render_csv_quoting () =
  let csv = Render.csv ~header:[ "a"; "b" ] ~rows:[ [ "x,y"; "z\"q" ] ] in
  Alcotest.(check string) "quoted" "a,b\n\"x,y\",\"z\"\"q\"\n" csv

let test_sweep_gains_finite () =
  let result = Sweep.run (tiny_spec 7) in
  List.iter
    (fun baseline ->
      Array.iter
        (fun g -> Alcotest.(check bool) "finite" true (Float.is_finite g))
        (Sweep.gains_over result ~baseline))
    [ Policies.Random; Policies.Sequential; Policies.Load_aware ]

(* --- Queue study ------------------------------------------------------------- *)

module Queue_study = Rm_experiments.Queue_study

let test_queue_study_structure () =
  let rows = Queue_study.run ~seed:7 ~job_count:3 () in
  Alcotest.(check int) "four policies" 4 (List.length rows);
  List.iter
    (fun (r : Queue_study.policy_row) ->
      Alcotest.(check int) "all jobs finish" 3
        r.Queue_study.summary.Rm_sched.Scheduler.jobs_finished;
      Alcotest.(check bool) "turnaround positive" true
        (r.Queue_study.summary.Rm_sched.Scheduler.mean_turnaround_s > 0.0))
    rows;
  Alcotest.(check bool) "renders" true (String.length (Queue_study.render rows) > 0)

(* --- Chaos study -------------------------------------------------------- *)

module Chaos_study = Rm_experiments.Chaos_study
module Scheduler = Rm_sched.Scheduler

let test_chaos_off_matches_baseline () =
  (* The chaos harness with no plan must be the queue study bit for bit:
     same outcomes, same timestamps. The resilience knobs (liveness
     poll, staleness gate, checkpointing) only act when a fault fires. *)
  let policy = Rm_core.Policies.Network_load_aware in
  let baseline =
    List.find
      (fun (r : Queue_study.policy_row) -> r.Queue_study.policy = policy)
      (Queue_study.run ~seed:83 ~job_count:3 ())
  in
  let sched, injector = Chaos_study.run_sched ~seed:83 ~job_count:3 ~policy () in
  Alcotest.(check bool) "no injector" true (injector = None);
  let s = Scheduler.summary sched in
  let b = baseline.Queue_study.summary in
  Alcotest.(check int) "same finished" b.Scheduler.jobs_finished
    s.Scheduler.jobs_finished;
  Alcotest.(check (float 0.0)) "same mean wait" b.Scheduler.mean_wait_s
    s.Scheduler.mean_wait_s;
  Alcotest.(check (float 0.0)) "same mean turnaround" b.Scheduler.mean_turnaround_s
    s.Scheduler.mean_turnaround_s;
  Alcotest.(check (float 0.0)) "same max wait" b.Scheduler.max_wait_s
    s.Scheduler.max_wait_s

let test_chaos_heavy_terminates_every_job () =
  (* Under the heavy plan no job may be left hanging: every submission
     ends Finished or Rejected. *)
  let policy = Rm_core.Policies.Load_aware in
  let cluster = Rm_cluster.Cluster.iitk_reference () in
  let plan =
    match
      Chaos_study.plan_of_intensity ~cluster
        ~first_after_s:
          (Rm_monitor.System.warm_up_s Rm_monitor.System.default_cadence)
        ~seed:100 Chaos_study.Heavy
    with
    | Some p -> p
    | None -> Alcotest.fail "heavy plan missing"
  in
  let sched, injector = Chaos_study.run_sched ~seed:83 ~job_count:4 ~plan ~policy () in
  let injector = match injector with Some i -> i | None -> Alcotest.fail "no injector" in
  Alcotest.(check bool) "faults fired" true (Rm_faults.Injector.injected injector > 0);
  Alcotest.(check int) "nothing queued" 0 (List.length (Scheduler.queued sched));
  Alcotest.(check int) "nothing running" 0 (List.length (Scheduler.running sched));
  Alcotest.(check int) "nothing failed-pending" 0
    (List.length (Scheduler.failed sched));
  Alcotest.(check int) "all jobs accounted for" 4
    (List.length (Scheduler.finished sched)
    + List.length (Scheduler.rejected sched))

let test_chaos_rows_and_render () =
  let rows =
    Chaos_study.run ~seed:83 ~job_count:2
      ~intensities:[ Chaos_study.Off; Chaos_study.Light ] ()
  in
  Alcotest.(check int) "intensities x policies" 8 (List.length rows);
  List.iter
    (fun (r : Chaos_study.row) ->
      Alcotest.(check bool) "goodput in [0,1]" true
        (r.Chaos_study.goodput >= 0.0 && r.Chaos_study.goodput <= 1.0);
      Alcotest.(check bool) "jobs accounted" true
        (r.Chaos_study.finished + r.Chaos_study.rejected = 2);
      if r.Chaos_study.intensity = Chaos_study.Off then begin
        Alcotest.(check int) "off: no faults" 0 r.Chaos_study.faults_injected;
        Alcotest.(check int) "off: no requeues" 0 r.Chaos_study.requeues;
        Alcotest.(check (float 0.0)) "off: nothing wasted" 0.0
          r.Chaos_study.wasted_node_s
      end)
    rows;
  Alcotest.(check bool) "renders" true
    (String.length (Chaos_study.render rows) > 0)

let test_interference_structure () =
  let i = Queue_study.interference ~seed:13 () in
  Alcotest.(check bool) "alone positive" true (i.Queue_study.alone_s > 0.0);
  Alcotest.(check bool) "aware at most as much overlap as random... or both small"
    true
    (i.Queue_study.aware_overlap >= 0 && i.Queue_study.random_overlap >= 0);
  Alcotest.(check bool) "aware beside not much worse than alone" true
    (i.Queue_study.beside_aware_s < 2.0 *. i.Queue_study.alone_s);
  Alcotest.(check bool) "renders" true
    (String.length (Queue_study.render_interference i) > 0)

(* --- Trace experiments ------------------------------------------------------- *)

let test_traces_structure () =
  let r = Traces.run ~hours:2.0 ~sample_period_s:600.0 ~nodes:6 ~seed:1 () in
  (* 2 h at 10-min samples: 13 points including t=0. *)
  Alcotest.(check int) "13 samples" 13 (Timeseries.length r.Traces.load_a);
  Alcotest.(check int) "avg same length" 13 (Timeseries.length r.Traces.load_avg);
  let util = Timeseries.value_summary r.Traces.util_avg in
  Alcotest.(check bool) "util in range" true
    (util.Rm_stats.Descriptive.min >= 0.0 && util.Rm_stats.Descriptive.max <= 100.0);
  Alcotest.(check bool) "render nonempty" true
    (String.length (Traces.render r) > 100)

let test_bandwidth_map_structure () =
  let r = Bandwidth_map.run ~nodes:12 ~sweeps:2 ~hours:0.5 ~seed:2 () in
  Alcotest.(check int) "12x12 heatmap" 12 (Matrix.rows r.Bandwidth_map.heat);
  Alcotest.(check bool) "proximity effect" true
    (r.Bandwidth_map.same_switch_mean > r.Bandwidth_map.cross_switch_mean);
  Alcotest.(check int) "three pairs" 3 (List.length r.Bandwidth_map.pair_series);
  Alcotest.(check bool) "render nonempty" true
    (String.length (Bandwidth_map.render r) > 100)

(* --- Matrix: the scenario × policy × engine experiment matrix ----------- *)

module Emat = Rm_experiments.Matrix
module Dash = Rm_experiments.Dashboard

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Budget 0 disables the wall-clock throughput loop, so the whole run
   is virtual-time-deterministic. *)
let tiny_spec =
  {
    Emat.spec_name = "tiny";
    seed = 7;
    scenarios = [ "uniform"; "chaos-heavy" ];
    policies = [ "random"; "network-load-aware" ];
    engines = [ "naive"; "dense" ];
    budget = { Emat.alloc_budget_s = 0.0; job_count = 2 };
    rules =
      [
        {
          Emat.on_scenario = Some "chaos-heavy";
          on_policy = Some "random";
          on_engine = None;
          action = Emat.Skip "test-skip";
        };
      ];
  }

let tiny_artifact = lazy (Emat.run tiny_spec)

let test_matrix_tiny_run () =
  let a = Lazy.force tiny_artifact in
  Alcotest.(check string) "schema" Emat.schema_version a.Emat.schema;
  Alcotest.(check int) "2x2x2 cells" 8 (List.length a.Emat.cells);
  let skipped, ran =
    List.partition
      (fun (c : Emat.cell) -> c.Emat.status <> Emat.Ran)
      a.Emat.cells
  in
  Alcotest.(check int) "skip rule hits both engines" 2 (List.length skipped);
  List.iter
    (fun (c : Emat.cell) ->
      Alcotest.(check string) "skips are chaos-heavy" "chaos-heavy"
        c.Emat.scenario;
      Alcotest.(check string) "skips are random" "random" c.Emat.policy;
      Alcotest.(check bool) "skipped cells carry no sched result" true
        (c.Emat.sched = None))
    skipped;
  List.iter
    (fun (c : Emat.cell) ->
      Alcotest.(check bool) "budget 0 means no rate" true
        (c.Emat.allocs_per_sec = None && c.Emat.reps = 0);
      match c.Emat.sched with
      | None -> Alcotest.fail "ran cell without sched result"
      | Some s ->
        Alcotest.(check bool) "jobs finished" true (s.Emat.jobs_finished > 0);
        Alcotest.(check bool) "slo present" true (s.Emat.slo <> None);
        Alcotest.(check bool) "makespan positive" true (s.Emat.makespan_s > 0.0);
        Alcotest.(check bool) "goodput in (0,1]" true
          (s.Emat.goodput > 0.0 && s.Emat.goodput <= 1.0);
        let allocs =
          match List.assoc_opt "core.allocations" s.Emat.counters with
          | Some v -> v
          | None -> -1.0
        in
        Alcotest.(check bool) "core.allocations counted" true (allocs > 0.0);
        if c.Emat.scenario = "chaos-heavy" then
          Alcotest.(check bool) "chaos cells saw faults" true
            (s.Emat.faults_injected > 0))
    ran;
  (* the engine axis shares one scheduler run per (scenario, policy) *)
  let naive =
    List.find
      (fun (c : Emat.cell) ->
        c.Emat.scenario = "uniform" && c.Emat.policy = "random"
        && c.Emat.engine = "naive")
      a.Emat.cells
  in
  let dense =
    List.find
      (fun (c : Emat.cell) ->
        c.Emat.scenario = "uniform" && c.Emat.policy = "random"
        && c.Emat.engine = "dense")
      a.Emat.cells
  in
  Alcotest.(check bool) "sched results engine-invariant" true
    (naive.Emat.sched = dense.Emat.sched)

(* Satellite: chaos plans must seed from cell coordinates, never wall
   clock — two runs of the same zero-budget spec are bit-identical. *)
let test_matrix_deterministic_rerun () =
  let a = Lazy.force tiny_artifact in
  let b = Emat.run tiny_spec in
  Alcotest.(check string) "re-run is bit-identical" (Emat.to_string a)
    (Emat.to_string b)

let test_matrix_cell_seed_pinned () =
  Alcotest.(check int) "chaos-heavy/random/naive @ seed 83" 185284584
    (Emat.cell_seed ~seed:83 ~scenario:"chaos-heavy" ~policy:"random"
       ~engine:"naive");
  Alcotest.(check int) "uniform/network-load-aware/dense @ seed 83" 824096403
    (Emat.cell_seed ~seed:83 ~scenario:"uniform"
       ~policy:"network-load-aware" ~engine:"dense");
  Alcotest.(check bool) "coordinates change the seed" true
    (Emat.cell_seed ~seed:1 ~scenario:"a" ~policy:"b" ~engine:"c"
    <> Emat.cell_seed ~seed:1 ~scenario:"a" ~policy:"b" ~engine:"d")

let test_matrix_spec_validation () =
  let bad l = match Emat.validate_spec l with Ok () -> false | Error _ -> true in
  Alcotest.(check bool) "quick spec valid" true
    (Emat.validate_spec Emat.quick_spec = Ok ());
  Alcotest.(check bool) "full spec valid" true
    (Emat.validate_spec Emat.full_spec = Ok ());
  Alcotest.(check bool) "unknown scenario rejected" true
    (bad { tiny_spec with Emat.scenarios = [ "marsupial" ] });
  Alcotest.(check bool) "unknown policy rejected" true
    (bad { tiny_spec with Emat.policies = [ "psychic" ] });
  Alcotest.(check bool) "unknown engine rejected" true
    (bad { tiny_spec with Emat.engines = [ "dense-par0" ] });
  Alcotest.(check bool) "empty axis rejected" true
    (bad { tiny_spec with Emat.engines = [] });
  Alcotest.(check bool) "zero jobs rejected" true
    (bad
       {
         tiny_spec with
         Emat.budget = { Emat.alloc_budget_s = 0.0; job_count = 0 };
       });
  Alcotest.(check bool) "dense-parN parses" true
    (Emat.engine_of_name "dense-par4" = Some (Emat.Dense_par 4))

(* --- gate semantics, on hand-built artifacts --------------------------- *)

let mk_cell ?(status = Emat.Ran) ?rate ?(finished = 3) ?(goodput = 1.0)
    ~scenario ~policy ~engine () =
  {
    Emat.scenario;
    policy;
    engine;
    status;
    allocs_per_sec = rate;
    reps = (match rate with Some _ -> 100 | None -> 0);
    sched =
      (match status with
      | Emat.Skipped _ -> None
      | Emat.Ran ->
        Some
          {
            Emat.jobs_finished = finished;
            rejected = 0;
            requeues = 1;
            faults_injected = 2;
            makespan_s = 1200.0;
            goodput;
            mean_turnaround_s = 300.5;
            slo =
              Some
                {
                  Emat.wait_p50 = 1.0;
                  wait_p90 = 2.0;
                  wait_p99 = 3.0;
                  mean_wait_s = 1.5;
                  max_queue_depth = 4;
                  mean_queue_depth = 1.25;
                };
            counters = [ ("core.allocations", 42.0) ];
          });
  }

let mk_artifact ?(cores = 8) cells =
  {
    Emat.schema = Emat.schema_version;
    spec = { tiny_spec with Emat.rules = [] };
    cores;
    cells;
  }

let test_matrix_gate () =
  let base =
    mk_artifact
      [
        mk_cell ~rate:100.0 ~scenario:"uniform" ~policy:"random"
          ~engine:"naive" ();
        mk_cell ~rate:100.0 ~scenario:"uniform" ~policy:"random"
          ~engine:"dense" ();
      ]
  in
  let same = mk_artifact [ mk_cell ~rate:90.0 ~scenario:"uniform"
                             ~policy:"random" ~engine:"naive" () ] in
  (* identical → pass; missing dense cell → skip *)
  let gated = Emat.gate ~baseline:base ~current:same () in
  Alcotest.(check int) "one entry per baseline cell" 2 (List.length gated);
  Alcotest.(check bool) "gate ok" true (Emat.gate_ok gated);
  Alcotest.(check bool) "missing cell skipped" true
    (List.exists
       (fun (g : Emat.gated) ->
         g.Emat.g_engine = "dense"
         && match g.Emat.verdict with Emat.Skip_gate _ -> true | _ -> false)
       gated);
  (* rate collapse past the ratio → fail *)
  let slow = mk_artifact [ mk_cell ~rate:10.0 ~scenario:"uniform"
                             ~policy:"random" ~engine:"naive" () ] in
  Alcotest.(check bool) "2x ratio catches a 10x collapse" false
    (Emat.gate_ok (Emat.gate ~baseline:base ~current:slow ()));
  Alcotest.(check bool) "wider ratio tolerates it" true
    (Emat.gate_ok (Emat.gate ~ratio:20.0 ~baseline:base ~current:slow ()));
  (* differing core counts: rates not compared ... *)
  let slow_elsewhere =
    mk_artifact ~cores:4
      [ mk_cell ~rate:10.0 ~scenario:"uniform" ~policy:"random"
          ~engine:"naive" () ]
  in
  Alcotest.(check bool) "cores mismatch skips the rate gate" true
    (Emat.gate_ok (Emat.gate ~baseline:base ~current:slow_elsewhere ()));
  (* ... but deterministic fields still gate *)
  let dropped_jobs =
    mk_artifact ~cores:4
      [ mk_cell ~rate:100.0 ~finished:1 ~scenario:"uniform" ~policy:"random"
          ~engine:"naive" () ]
  in
  Alcotest.(check bool) "fewer finished jobs fails across cores" false
    (Emat.gate_ok (Emat.gate ~baseline:base ~current:dropped_jobs ()));
  let leaky =
    mk_artifact
      [ mk_cell ~rate:100.0 ~goodput:0.5 ~scenario:"uniform" ~policy:"random"
          ~engine:"naive" () ]
  in
  Alcotest.(check bool) "goodput drop past 0.1 fails" false
    (Emat.gate_ok (Emat.gate ~baseline:base ~current:leaky ()))

(* --- artifact codec: qcheck encode → decode → encode fixpoint ---------- *)

let qcheck = QCheck_alcotest.to_alcotest

let name_gen = QCheck.Gen.oneofl [ "uniform"; "hotspot"; "chaos-heavy"; "x" ]
let pos_float_gen = QCheck.Gen.float_bound_inclusive 1.0e6

let budget_gen =
  QCheck.Gen.(
    let* alloc_budget_s = pos_float_gen in
    let* job_count = 1 -- 50 in
    return { Emat.alloc_budget_s; job_count })

let rule_gen =
  QCheck.Gen.(
    let* on_scenario = opt name_gen in
    let* on_policy = opt name_gen in
    let* on_engine = opt name_gen in
    let* action =
      oneof
        [
          map (fun s -> Emat.Skip s) name_gen;
          map (fun b -> Emat.Budget b) budget_gen;
        ]
    in
    return { Emat.on_scenario; on_policy; on_engine; action })

let spec_gen =
  QCheck.Gen.(
    let* spec_name = name_gen in
    let* seed = 0 -- 10_000 in
    let* scenarios = list_size (1 -- 3) name_gen in
    let* policies = list_size (1 -- 3) name_gen in
    let* engines = list_size (1 -- 3) name_gen in
    let* budget = budget_gen in
    let* rules = list_size (0 -- 3) rule_gen in
    return { Emat.spec_name; seed; scenarios; policies; engines; budget; rules })

let slo_gen =
  QCheck.Gen.(
    let* wait_p50 = pos_float_gen in
    let* wait_p90 = pos_float_gen in
    let* wait_p99 = pos_float_gen in
    let* mean_wait_s = pos_float_gen in
    let* max_queue_depth = 0 -- 100 in
    let* mean_queue_depth = pos_float_gen in
    return
      {
        Emat.wait_p50; wait_p90; wait_p99; mean_wait_s; max_queue_depth;
        mean_queue_depth;
      })

let sched_gen =
  QCheck.Gen.(
    let* jobs_finished = 0 -- 50 in
    let* rejected = 0 -- 10 in
    let* requeues = 0 -- 10 in
    let* faults_injected = 0 -- 10 in
    let* makespan_s = pos_float_gen in
    let* goodput = float_bound_inclusive 1.0 in
    let* mean_turnaround_s = pos_float_gen in
    let* slo = opt slo_gen in
    let* counters = list_size (0 -- 4) (pair name_gen pos_float_gen) in
    return
      {
        Emat.jobs_finished; rejected; requeues; faults_injected; makespan_s;
        goodput; mean_turnaround_s; slo; counters;
      })

let cell_gen =
  QCheck.Gen.(
    let* scenario = name_gen in
    let* policy = name_gen in
    let* engine = name_gen in
    let* skipped = opt name_gen in
    match skipped with
    | Some reason ->
      return
        {
          Emat.scenario; policy; engine;
          status = Emat.Skipped reason;
          allocs_per_sec = None;
          reps = 0;
          sched = None;
        }
    | None ->
      let* allocs_per_sec = opt pos_float_gen in
      let* reps = 0 -- 10_000 in
      let* sched = opt sched_gen in
      return
        { Emat.scenario; policy; engine; status = Emat.Ran; allocs_per_sec;
          reps; sched })

let artifact_gen =
  QCheck.Gen.(
    let* spec = spec_gen in
    let* cores = 1 -- 256 in
    let* cells = list_size (0 -- 8) cell_gen in
    return { Emat.schema = Emat.schema_version; spec; cores; cells })

(* Counters decode through an assoc list, so duplicate keys would be
   ambiguous; the runner never emits them and neither does the
   generator (dedup below). Floats are finite by construction — the
   emitter turns non-finite into null. *)
let dedup_counters (a : Emat.artifact) =
  let dedup l =
    List.fold_left
      (fun acc (k, v) -> if List.mem_assoc k acc then acc else acc @ [ (k, v) ])
      [] l
  in
  {
    a with
    Emat.cells =
      List.map
        (fun (c : Emat.cell) ->
          {
            c with
            Emat.sched =
              Option.map
                (fun s -> { s with Emat.counters = dedup s.Emat.counters })
                c.Emat.sched;
          })
        a.Emat.cells;
  }

let prop_matrix_artifact_roundtrip =
  QCheck.Test.make ~name:"matrix artifact encode/decode/encode is a fixpoint"
    ~count:200
    (QCheck.make artifact_gen)
    (fun a ->
      let a = dedup_counters a in
      let s = Emat.to_string a in
      match Emat.of_string s with
      | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m
      | Ok b ->
        if Emat.to_string b <> s then
          QCheck.Test.fail_reportf "re-encode differs:\n%s\nvs\n%s" s
            (Emat.to_string b)
        else true)

let test_matrix_decode_errors () =
  let err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "garbage" true (err (Emat.of_string "nonsense"));
  Alcotest.(check bool) "wrong schema" true
    (err (Emat.of_string "{\"schema\":\"rm-matrix/v0\"}"));
  Alcotest.(check bool) "missing fields" true
    (err (Emat.of_string "{\"schema\":\"rm-matrix/v1\"}"))

(* --- dashboard --------------------------------------------------------- *)

let test_dashboard_renders () =
  let current =
    mk_artifact
      [
        mk_cell ~rate:100.0 ~scenario:"uniform" ~policy:"random"
          ~engine:"naive" ();
        mk_cell ~rate:400.0 ~scenario:"uniform" ~policy:"random"
          ~engine:"dense" ();
        mk_cell
          ~status:(Emat.Skipped "why not")
          ~scenario:"chaos-heavy" ~policy:"random" ~engine:"naive" ();
      ]
  in
  let baseline = mk_artifact [ mk_cell ~rate:1_000_000.0 ~scenario:"uniform"
                                 ~policy:"random" ~engine:"naive" () ] in
  let bench_allocator =
    Rm_telemetry.Json.of_string
      {|{"schema":"rm-bench-allocator/v1","rows":[
         {"v":60,"policy":"network-load-aware","engine":"dense-warm","allocs_per_sec":1000.0,"reps":10},
         {"v":1024,"policy":"network-load-aware","engine":"dense-warm","allocs_per_sec":50.0,"reps":10}]}|}
  in
  let bench_serve =
    Rm_telemetry.Json.of_string
      {|{"schema":"rm-bench-serve/v1","speedup":3.5,"rows":[
         {"mode":"batched","allocs_per_sec":1700.0,"p50_ms":18.0,"p99_ms":50.0}]}|}
  in
  let input =
    Dash.make
      ~history:[ ("old", baseline) ]
      ~baseline ~ratio:2.0 ~bench_allocator ~bench_serve ~current ()
  in
  let md = Dash.markdown input in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "markdown has %S" needle) true
        (contains md needle))
    [
      "RM perf dashboard"; "## Cells"; "Heatmaps"; "Baseline gate";
      "FAIL uniform/random/naive"; "Trends across runs";
      "Allocator scaling (BENCH_allocator.json"; "dense-warm";
      "Serve daemon (BENCH_serve.json"; "batched speedup: 3.50x";
      "skipped: why not"; "Cells CSV";
    ];
  let html = Dash.html input in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "html has %S" needle) true
        (contains html needle))
    [
      "<!DOCTYPE html>"; "badge fail"; "Heatmaps"; "dense-warm";
      "batched speedup: 3.50x"; "</html>";
    ];
  (* the failing gate the renderers annotate is the one gate computes *)
  Alcotest.(check bool) "verdicts expose the regression" false
    (Emat.gate_ok (Dash.verdicts input));
  (* no baseline → no gating, renders clean *)
  let ungated = Dash.make ~current () in
  Alcotest.(check int) "no baseline, no verdicts" 0
    (List.length (Dash.verdicts ungated));
  Alcotest.(check bool) "ungated markdown renders" true
    (contains (Dash.markdown ungated) "nothing gated")

let suites =
  [
    ( "experiments.render",
      [
        Alcotest.test_case "table alignment" `Quick test_render_table_alignment;
        Alcotest.test_case "table ragged" `Quick test_render_table_ragged;
        Alcotest.test_case "sparkline" `Quick test_render_sparkline;
        Alcotest.test_case "heatmap scale" `Quick test_render_heatmap_scale;
      ] );
    ( "experiments.harness",
      [
        Alcotest.test_case "warm populates monitor" `Quick
          test_harness_warm_populates_monitor;
        Alcotest.test_case "run app" `Quick test_harness_run_app;
        Alcotest.test_case "compare runs all" `Quick
          test_harness_compare_runs_all_policies;
        Alcotest.test_case "gains math" `Quick test_harness_gains;
        Alcotest.test_case "time advances" `Quick test_harness_time_advances;
      ] );
    ( "experiments.e2e",
      [
        Alcotest.test_case "ours beats random" `Slow test_e2e_nl_aware_beats_random;
      ] );
    ( "experiments.sweep",
      [
        Alcotest.test_case "records complete" `Quick test_sweep_records_complete;
        Alcotest.test_case "renders" `Quick test_sweep_renders;
        Alcotest.test_case "gains finite" `Quick test_sweep_gains_finite;
        Alcotest.test_case "csv export" `Quick test_sweep_csv;
        Alcotest.test_case "csv quoting" `Quick test_render_csv_quoting;
      ] );
    ( "experiments.queue",
      [
        Alcotest.test_case "queue study" `Slow test_queue_study_structure;
        Alcotest.test_case "interference" `Slow test_interference_structure;
      ] );
    ( "experiments.chaos",
      [
        Alcotest.test_case "off matches baseline" `Slow
          test_chaos_off_matches_baseline;
        Alcotest.test_case "heavy terminates every job" `Slow
          test_chaos_heavy_terminates_every_job;
        Alcotest.test_case "rows and render" `Slow test_chaos_rows_and_render;
      ] );
    ( "experiments.figures",
      [
        Alcotest.test_case "fig1 traces" `Quick test_traces_structure;
        Alcotest.test_case "fig2 bandwidth map" `Quick test_bandwidth_map_structure;
      ] );
    ( "experiments.matrix",
      [
        Alcotest.test_case "tiny run covers the grid" `Slow test_matrix_tiny_run;
        Alcotest.test_case "zero-budget rerun is bit-identical" `Slow
          test_matrix_deterministic_rerun;
        Alcotest.test_case "cell seeds pinned" `Quick
          test_matrix_cell_seed_pinned;
        Alcotest.test_case "spec validation" `Quick test_matrix_spec_validation;
        Alcotest.test_case "baseline gate semantics" `Quick test_matrix_gate;
        Alcotest.test_case "decode errors are Errors" `Quick
          test_matrix_decode_errors;
      ]
      @ [ qcheck prop_matrix_artifact_roundtrip ] );
    ( "experiments.dashboard",
      [ Alcotest.test_case "markdown and html render" `Quick
          test_dashboard_renders ] );
  ]

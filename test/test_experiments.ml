(* Integration tests for rm_experiments: harness protocol, end-to-end
   monitor -> allocator -> executor runs, experiment generators. *)

module Harness = Rm_experiments.Harness
module Sweep = Rm_experiments.Sweep
module Traces = Rm_experiments.Traces
module Bandwidth_map = Rm_experiments.Bandwidth_map
module Render = Rm_experiments.Render
module Policies = Rm_core.Policies
module Weights = Rm_core.Weights
module Request = Rm_core.Request
module Allocation = Rm_core.Allocation
module Scenario = Rm_workload.Scenario
module Cluster = Rm_cluster.Cluster
module Matrix = Rm_stats.Matrix
module Timeseries = Rm_stats.Timeseries

let small_cluster () =
  Cluster.homogeneous ~cores:8 ~freq_ghz:3.0 ~nodes_per_switch:[ 4; 4 ] ()

let small_env ?(scenario = Scenario.normal) ?(seed = 3) () =
  let env =
    Harness.make_env ~cluster:(small_cluster ()) ~scenario ~seed
      ~horizon:50_000.0 ()
  in
  Harness.warm env;
  env

let app_of ~ranks =
  Rm_apps.Minimd.app
    ~config:{ (Rm_apps.Minimd.default_config ~s:8) with Rm_apps.Minimd.steps = 20 }
    ~ranks

(* --- Render -------------------------------------------------------------- *)

let test_render_table_alignment () =
  let s =
    Render.table_str ~header:[ "a"; "bb" ]
      ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let lines = String.split_on_char '\n' s in
  (* header + rule + 2 rows + trailing empty fragment. *)
  Alcotest.(check int) "5 fragments" 5 (List.length lines);
  Alcotest.(check bool) "has rule" true
    (String.exists (fun c -> c = '-') (List.nth lines 1))

let test_render_table_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Render.table: ragged row")
    (fun () -> ignore (Render.table_str ~header:[ "a" ] ~rows:[ [ "1"; "2" ] ]))

let test_render_sparkline () =
  Alcotest.(check int) "one char per point" 5
    (String.length (Render.sparkline [| 1.0; 2.0; 3.0; 2.0; 1.0 |]));
  Alcotest.(check string) "empty" "" (Render.sparkline [||])

let test_render_heatmap_scale () =
  let m = Matrix.square 2 ~init:1.0 in
  Matrix.set m 0 1 5.0;
  let s = Render.heatmap_str ~values:m () in
  Alcotest.(check bool) "mentions scale" true
    (String.length s > 0
    && String.split_on_char '\n' s
       |> List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "scale"))

(* --- Harness -------------------------------------------------------------- *)

let test_harness_warm_populates_monitor () =
  let env = small_env () in
  let snap = Harness.snapshot env in
  Alcotest.(check int) "8 usable nodes" 8
    (List.length (Rm_monitor.Snapshot.usable snap))

let test_harness_run_app () =
  let env = small_env () in
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:8 () in
  let r =
    Harness.run_app env ~policy:Policies.Network_load_aware
      ~weights:Weights.paper_default ~request ~app_of
  in
  Alcotest.(check int) "8 procs placed" 8 (Allocation.total_procs r.Harness.allocation);
  Alcotest.(check bool) "time positive" true
    (r.Harness.stats.Rm_mpisim.Executor.total_time_s > 0.0);
  Alcotest.(check bool) "group metrics sane" true
    (r.Harness.group_latency_us >= 0.0 && r.Harness.group_bw_complement >= 0.0)

let test_harness_compare_runs_all_policies () =
  let env = small_env () in
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:8 () in
  let runs =
    Harness.compare_policies env ~weights:Weights.paper_default ~request ~app_of
      ~gap_s:5.0 ()
  in
  Alcotest.(check int) "four runs" 4 (List.length runs);
  Alcotest.(check (list string)) "paper order"
    [ "random"; "sequential"; "load-aware"; "network-load-aware" ]
    (List.map (fun (p, _) -> Policies.name p) runs)

let test_harness_gains () =
  let g = Harness.gains_vs ~baseline_times:[| 10.0; 10.0 |] ~ours_times:[| 5.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "50%" 50.0 g;
  let s = Harness.summarize_gains [| 10.0; 20.0; 60.0 |] in
  Alcotest.(check (float 1e-9)) "avg" 30.0 s.Harness.average;
  Alcotest.(check (float 1e-9)) "median" 20.0 s.Harness.median;
  Alcotest.(check (float 1e-9)) "max" 60.0 s.Harness.maximum

let test_harness_time_advances () =
  let env = small_env () in
  let w = Harness.world env in
  let t0 = Rm_workload.World.now w in
  Harness.idle env ~seconds:100.0;
  Alcotest.(check bool) "idle advances" true (Rm_workload.World.now w >= t0 +. 100.0)

(* --- End-to-end: ours beats random on a contended cluster ------------------ *)

let test_e2e_nl_aware_beats_random () =
  (* Averaged over repetitions on a busy cluster, the paper's allocator
     must beat random allocation. *)
  let env = small_env ~scenario:Scenario.busy ~seed:11 () in
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:8 () in
  let total = ref 0.0 and total_random = ref 0.0 in
  for _ = 1 to 3 do
    let runs =
      Harness.compare_policies env ~weights:Weights.paper_default ~request
        ~app_of ~gap_s:10.0 ()
    in
    List.iter
      (fun (p, (r : Harness.run_result)) ->
        let t = r.Harness.stats.Rm_mpisim.Executor.total_time_s in
        match p with
        | Policies.Network_load_aware -> total := !total +. t
        | Policies.Random -> total_random := !total_random +. t
        | Policies.Sequential | Policies.Load_aware
        | Policies.Hierarchical -> ())
      runs
  done;
  Alcotest.(check bool) "ours faster than random" true (!total < !total_random)

(* --- Sweep ---------------------------------------------------------------- *)

let tiny_spec seed : Sweep.spec =
  {
    Sweep.label = "tiny";
    size_label = "s";
    procs_list = [ 8 ];
    sizes = [ 8 ];
    reps = 2;
    ppn = 4;
    alpha = 0.3;
    weights = Weights.paper_default;
    scenario = Scenario.normal;
    seed;
    app_of =
      (fun ~size ~ranks ->
        Rm_apps.Minimd.app
          ~config:
            { (Rm_apps.Minimd.default_config ~s:size) with Rm_apps.Minimd.steps = 10 }
          ~ranks);
  }

let test_sweep_records_complete () =
  let result = Sweep.run (tiny_spec 5) in
  (* 1 procs x 1 size x 2 reps x 4 policies. *)
  Alcotest.(check int) "8 records" 8 (List.length result.Sweep.records);
  List.iter
    (fun policy ->
      let times = Sweep.cell_times result ~procs:8 ~size:8 ~policy in
      Alcotest.(check int) (Policies.name policy) 2 (Array.length times))
    Policies.all

let test_sweep_renders () =
  let result = Sweep.run (tiny_spec 6) in
  let times = Sweep.render_times result ~title:"t" in
  Alcotest.(check bool) "times mentions procs" true
    (String.length times > 0);
  let gains = Sweep.render_gains result ~title:"g" in
  Alcotest.(check bool) "gains mentions load-aware" true
    (String.length gains > 0);
  let fig5 = Sweep.render_load_per_core result ~title:"f" in
  Alcotest.(check bool) "fig5 nonempty" true (String.length fig5 > 0)

let test_sweep_csv () =
  let result = Sweep.run (tiny_spec 8) in
  let csv = Sweep.to_csv result in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (* header + 8 records. *)
  Alcotest.(check int) "rows" 9 (List.length lines);
  Alcotest.(check bool) "header fields" true
    (String.length (List.hd lines) > 0
    && String.split_on_char ',' (List.hd lines) |> List.length = 10)

let test_render_csv_quoting () =
  let csv = Render.csv ~header:[ "a"; "b" ] ~rows:[ [ "x,y"; "z\"q" ] ] in
  Alcotest.(check string) "quoted" "a,b\n\"x,y\",\"z\"\"q\"\n" csv

let test_sweep_gains_finite () =
  let result = Sweep.run (tiny_spec 7) in
  List.iter
    (fun baseline ->
      Array.iter
        (fun g -> Alcotest.(check bool) "finite" true (Float.is_finite g))
        (Sweep.gains_over result ~baseline))
    [ Policies.Random; Policies.Sequential; Policies.Load_aware ]

(* --- Queue study ------------------------------------------------------------- *)

module Queue_study = Rm_experiments.Queue_study

let test_queue_study_structure () =
  let rows = Queue_study.run ~seed:7 ~job_count:3 () in
  Alcotest.(check int) "four policies" 4 (List.length rows);
  List.iter
    (fun (r : Queue_study.policy_row) ->
      Alcotest.(check int) "all jobs finish" 3
        r.Queue_study.summary.Rm_sched.Scheduler.jobs_finished;
      Alcotest.(check bool) "turnaround positive" true
        (r.Queue_study.summary.Rm_sched.Scheduler.mean_turnaround_s > 0.0))
    rows;
  Alcotest.(check bool) "renders" true (String.length (Queue_study.render rows) > 0)

(* --- Chaos study -------------------------------------------------------- *)

module Chaos_study = Rm_experiments.Chaos_study
module Scheduler = Rm_sched.Scheduler

let test_chaos_off_matches_baseline () =
  (* The chaos harness with no plan must be the queue study bit for bit:
     same outcomes, same timestamps. The resilience knobs (liveness
     poll, staleness gate, checkpointing) only act when a fault fires. *)
  let policy = Rm_core.Policies.Network_load_aware in
  let baseline =
    List.find
      (fun (r : Queue_study.policy_row) -> r.Queue_study.policy = policy)
      (Queue_study.run ~seed:83 ~job_count:3 ())
  in
  let sched, injector = Chaos_study.run_sched ~seed:83 ~job_count:3 ~policy () in
  Alcotest.(check bool) "no injector" true (injector = None);
  let s = Scheduler.summary sched in
  let b = baseline.Queue_study.summary in
  Alcotest.(check int) "same finished" b.Scheduler.jobs_finished
    s.Scheduler.jobs_finished;
  Alcotest.(check (float 0.0)) "same mean wait" b.Scheduler.mean_wait_s
    s.Scheduler.mean_wait_s;
  Alcotest.(check (float 0.0)) "same mean turnaround" b.Scheduler.mean_turnaround_s
    s.Scheduler.mean_turnaround_s;
  Alcotest.(check (float 0.0)) "same max wait" b.Scheduler.max_wait_s
    s.Scheduler.max_wait_s

let test_chaos_heavy_terminates_every_job () =
  (* Under the heavy plan no job may be left hanging: every submission
     ends Finished or Rejected. *)
  let policy = Rm_core.Policies.Load_aware in
  let cluster = Rm_cluster.Cluster.iitk_reference () in
  let plan =
    match
      Chaos_study.plan_of_intensity ~cluster
        ~first_after_s:
          (Rm_monitor.System.warm_up_s Rm_monitor.System.default_cadence)
        ~seed:100 Chaos_study.Heavy
    with
    | Some p -> p
    | None -> Alcotest.fail "heavy plan missing"
  in
  let sched, injector = Chaos_study.run_sched ~seed:83 ~job_count:4 ~plan ~policy () in
  let injector = match injector with Some i -> i | None -> Alcotest.fail "no injector" in
  Alcotest.(check bool) "faults fired" true (Rm_faults.Injector.injected injector > 0);
  Alcotest.(check int) "nothing queued" 0 (List.length (Scheduler.queued sched));
  Alcotest.(check int) "nothing running" 0 (List.length (Scheduler.running sched));
  Alcotest.(check int) "nothing failed-pending" 0
    (List.length (Scheduler.failed sched));
  Alcotest.(check int) "all jobs accounted for" 4
    (List.length (Scheduler.finished sched)
    + List.length (Scheduler.rejected sched))

let test_chaos_rows_and_render () =
  let rows =
    Chaos_study.run ~seed:83 ~job_count:2
      ~intensities:[ Chaos_study.Off; Chaos_study.Light ] ()
  in
  Alcotest.(check int) "intensities x policies" 8 (List.length rows);
  List.iter
    (fun (r : Chaos_study.row) ->
      Alcotest.(check bool) "goodput in [0,1]" true
        (r.Chaos_study.goodput >= 0.0 && r.Chaos_study.goodput <= 1.0);
      Alcotest.(check bool) "jobs accounted" true
        (r.Chaos_study.finished + r.Chaos_study.rejected = 2);
      if r.Chaos_study.intensity = Chaos_study.Off then begin
        Alcotest.(check int) "off: no faults" 0 r.Chaos_study.faults_injected;
        Alcotest.(check int) "off: no requeues" 0 r.Chaos_study.requeues;
        Alcotest.(check (float 0.0)) "off: nothing wasted" 0.0
          r.Chaos_study.wasted_node_s
      end)
    rows;
  Alcotest.(check bool) "renders" true
    (String.length (Chaos_study.render rows) > 0)

let test_interference_structure () =
  let i = Queue_study.interference ~seed:13 () in
  Alcotest.(check bool) "alone positive" true (i.Queue_study.alone_s > 0.0);
  Alcotest.(check bool) "aware at most as much overlap as random... or both small"
    true
    (i.Queue_study.aware_overlap >= 0 && i.Queue_study.random_overlap >= 0);
  Alcotest.(check bool) "aware beside not much worse than alone" true
    (i.Queue_study.beside_aware_s < 2.0 *. i.Queue_study.alone_s);
  Alcotest.(check bool) "renders" true
    (String.length (Queue_study.render_interference i) > 0)

(* --- Trace experiments ------------------------------------------------------- *)

let test_traces_structure () =
  let r = Traces.run ~hours:2.0 ~sample_period_s:600.0 ~nodes:6 ~seed:1 () in
  (* 2 h at 10-min samples: 13 points including t=0. *)
  Alcotest.(check int) "13 samples" 13 (Timeseries.length r.Traces.load_a);
  Alcotest.(check int) "avg same length" 13 (Timeseries.length r.Traces.load_avg);
  let util = Timeseries.value_summary r.Traces.util_avg in
  Alcotest.(check bool) "util in range" true
    (util.Rm_stats.Descriptive.min >= 0.0 && util.Rm_stats.Descriptive.max <= 100.0);
  Alcotest.(check bool) "render nonempty" true
    (String.length (Traces.render r) > 100)

let test_bandwidth_map_structure () =
  let r = Bandwidth_map.run ~nodes:12 ~sweeps:2 ~hours:0.5 ~seed:2 () in
  Alcotest.(check int) "12x12 heatmap" 12 (Matrix.rows r.Bandwidth_map.heat);
  Alcotest.(check bool) "proximity effect" true
    (r.Bandwidth_map.same_switch_mean > r.Bandwidth_map.cross_switch_mean);
  Alcotest.(check int) "three pairs" 3 (List.length r.Bandwidth_map.pair_series);
  Alcotest.(check bool) "render nonempty" true
    (String.length (Bandwidth_map.render r) > 100)

let suites =
  [
    ( "experiments.render",
      [
        Alcotest.test_case "table alignment" `Quick test_render_table_alignment;
        Alcotest.test_case "table ragged" `Quick test_render_table_ragged;
        Alcotest.test_case "sparkline" `Quick test_render_sparkline;
        Alcotest.test_case "heatmap scale" `Quick test_render_heatmap_scale;
      ] );
    ( "experiments.harness",
      [
        Alcotest.test_case "warm populates monitor" `Quick
          test_harness_warm_populates_monitor;
        Alcotest.test_case "run app" `Quick test_harness_run_app;
        Alcotest.test_case "compare runs all" `Quick
          test_harness_compare_runs_all_policies;
        Alcotest.test_case "gains math" `Quick test_harness_gains;
        Alcotest.test_case "time advances" `Quick test_harness_time_advances;
      ] );
    ( "experiments.e2e",
      [
        Alcotest.test_case "ours beats random" `Slow test_e2e_nl_aware_beats_random;
      ] );
    ( "experiments.sweep",
      [
        Alcotest.test_case "records complete" `Quick test_sweep_records_complete;
        Alcotest.test_case "renders" `Quick test_sweep_renders;
        Alcotest.test_case "gains finite" `Quick test_sweep_gains_finite;
        Alcotest.test_case "csv export" `Quick test_sweep_csv;
        Alcotest.test_case "csv quoting" `Quick test_render_csv_quoting;
      ] );
    ( "experiments.queue",
      [
        Alcotest.test_case "queue study" `Slow test_queue_study_structure;
        Alcotest.test_case "interference" `Slow test_interference_structure;
      ] );
    ( "experiments.chaos",
      [
        Alcotest.test_case "off matches baseline" `Slow
          test_chaos_off_matches_baseline;
        Alcotest.test_case "heavy terminates every job" `Slow
          test_chaos_heavy_terminates_every_job;
        Alcotest.test_case "rows and render" `Slow test_chaos_rows_and_render;
      ] );
    ( "experiments.figures",
      [
        Alcotest.test_case "fig1 traces" `Quick test_traces_structure;
        Alcotest.test_case "fig2 bandwidth map" `Quick test_bandwidth_map_structure;
      ] );
  ]

(* Tests for rm_faults: the fault-plan DSL (JSON round-trip, validation)
   and the injector's effect on ground truth and the monitor — crash /
   recover, NIC degradation, switch partitions, daemon kills handed back
   to the Central Monitor, store write-loss, and the bit-for-bit
   determinism guarantees the chaos study relies on. *)

module Sim = Rm_engine.Sim
module Rng = Rm_stats.Rng
module Cluster = Rm_cluster.Cluster
module Topology = Rm_cluster.Topology
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module System = Rm_monitor.System
module Snapshot = Rm_monitor.Snapshot
module Daemon = Rm_monitor.Daemon
module Fault_plan = Rm_faults.Fault_plan
module Injector = Rm_faults.Injector

let cluster () =
  Cluster.homogeneous ~cores:8 ~freq_ghz:3.0 ~nodes_per_switch:[ 4; 4 ] ()

let world ?(seed = 7) () =
  World.create ~cluster:(cluster ()) ~scenario:Scenario.quiet ~seed

let setup ?seed () =
  let sim = Sim.create () in
  let w = world ?seed () in
  (sim, w)

(* --- Fault_plan ------------------------------------------------------------- *)

let sample_plan () =
  {
    Fault_plan.name = "sample";
    seed = 11;
    events =
      [
        Fault_plan.one_shot ~at:600.0 ~duration_s:120.0
          (Fault_plan.Node_crash { node = 3 });
        Fault_plan.one_shot ~label:"flaky-nic" ~at:300.0
          (Fault_plan.Nic_degrade { node = 1; factor = 0.25 });
        Fault_plan.recurring ~mtbf_s:1800.0 ~mttr_s:120.0
          (Fault_plan.Switch_outage { switch = 1 });
        Fault_plan.one_shot ~at:700.0 (Fault_plan.Daemon_kill { name = "livehosts-0" });
        Fault_plan.one_shot ~at:400.0 ~duration_s:300.0 Fault_plan.Store_outage;
      ];
  }

let test_plan_json_round_trip () =
  let plan = sample_plan () in
  let back = Fault_plan.of_json (Fault_plan.to_json plan) in
  Alcotest.(check bool) "round trip" true (back = plan)

let test_plan_of_json_literal () =
  let plan =
    Fault_plan.of_json
      {|{"name": "demo", "seed": 7, "events": [
          {"action": "node-crash", "node": 3, "at": 600, "duration": 120},
          {"action": "switch-outage", "switch": 1, "mtbf": 1800, "mttr": 120},
          {"action": "store-outage", "at": 400}]}|}
  in
  Alcotest.(check string) "name" "demo" plan.Fault_plan.name;
  Alcotest.(check int) "seed" 7 plan.Fault_plan.seed;
  Alcotest.(check int) "events" 3 (List.length plan.Fault_plan.events);
  match (List.nth plan.Fault_plan.events 1).Fault_plan.schedule with
  | Fault_plan.Recurring { mtbf_s; mttr_s; first_after_s } ->
    Alcotest.(check (float 1e-9)) "mtbf" 1800.0 mtbf_s;
    Alcotest.(check (float 1e-9)) "mttr" 120.0 mttr_s;
    Alcotest.(check (float 1e-9)) "after" 0.0 first_after_s
  | _ -> Alcotest.fail "expected recurring schedule"

let test_plan_of_json_malformed () =
  let rejects s =
    match Fault_plan.of_json s with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail ("accepted malformed plan: " ^ s)
  in
  rejects "not json";
  rejects {|{"name": "x"}|};
  (* no events *)
  rejects {|{"events": [{"action": "node-crash", "node": 1}]}|};
  (* no schedule *)
  rejects {|{"events": [{"action": "frobnicate", "at": 1}]}|};
  rejects {|{"events": [{"action": "node-crash", "at": 1}]}|}
(* no node *)

let test_plan_validate () =
  let c = cluster () in
  let ok plan = Fault_plan.validate ~cluster:c plan in
  ok (sample_plan ());
  let rejects events =
    let plan = { Fault_plan.name = "bad"; seed = 0; events } in
    match Fault_plan.validate ~cluster:c plan with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.fail "validated a bad plan"
  in
  rejects [ Fault_plan.one_shot ~at:1.0 (Fault_plan.Node_crash { node = 99 }) ];
  rejects [ Fault_plan.one_shot ~at:1.0 (Fault_plan.Switch_outage { switch = 5 }) ];
  rejects
    [ Fault_plan.one_shot ~at:1.0 (Fault_plan.Nic_degrade { node = 0; factor = 1.5 }) ];
  rejects [ Fault_plan.one_shot ~at:(-5.0) (Fault_plan.Node_crash { node = 0 }) ];
  rejects
    [
      Fault_plan.recurring ~mtbf_s:0.0 ~mttr_s:10.0
        (Fault_plan.Node_crash { node = 0 });
    ]

let test_node_churn_constructor () =
  let plan = Fault_plan.node_churn ~nodes:[ 0; 2; 4 ] ~mtbf_s:600.0 ~mttr_s:60.0 "churn" in
  Alcotest.(check int) "one event per node" 3 (List.length plan.Fault_plan.events);
  Fault_plan.validate ~cluster:(cluster ()) plan

(* --- Injector: world faults --------------------------------------------------- *)

let one_event ?duration_s ~at action =
  { Fault_plan.name = "t"; seed = 1; events = [ Fault_plan.one_shot ~at ?duration_s action ] }

let test_injector_node_crash_recover () =
  let sim, w = setup () in
  let inj =
    Injector.inject ~sim ~world:w ~until:10_000.0
      (one_event ~at:100.0 ~duration_s:50.0 (Fault_plan.Node_crash { node = 3 }))
  in
  Alcotest.(check int) "one occurrence scheduled" 1 (Injector.scheduled inj);
  Sim.run_until sim 120.0;
  Alcotest.(check bool) "down during fault" false (World.is_up w ~node:3);
  Alcotest.(check int) "active" 1 (Injector.active inj);
  Sim.run_until sim 200.0;
  Alcotest.(check bool) "back up after repair" true (World.is_up w ~node:3);
  Alcotest.(check int) "injected" 1 (Injector.injected inj);
  Alcotest.(check int) "recovered" 1 (Injector.recovered inj);
  Alcotest.(check int) "nothing active" 0 (Injector.active inj)

let test_injector_permanent_crash () =
  let sim, w = setup () in
  let inj =
    Injector.inject ~sim ~world:w ~until:10_000.0
      (one_event ~at:100.0 (Fault_plan.Node_crash { node = 3 }))
  in
  Sim.run_until sim 9_000.0;
  Alcotest.(check bool) "still down" false (World.is_up w ~node:3);
  Alcotest.(check int) "never recovered" 0 (Injector.recovered inj)

let test_injector_nic_degrade () =
  let sim, w = setup () in
  ignore
    (Injector.inject ~sim ~world:w ~until:10_000.0
       (one_event ~at:100.0 ~duration_s:100.0
          (Fault_plan.Nic_degrade { node = 1; factor = 0.25 })));
  Alcotest.(check (float 1e-9)) "nominal before" 1.0 (World.nic_scale w ~node:1);
  Sim.run_until sim 150.0;
  Alcotest.(check (float 1e-9)) "degraded" 0.25 (World.nic_scale w ~node:1);
  Sim.run_until sim 300.0;
  Alcotest.(check (float 1e-9)) "restored" 1.0 (World.nic_scale w ~node:1)

let test_injector_switch_outage () =
  let sim, w = setup () in
  let members = Topology.nodes_of_switch (Cluster.topology (cluster ())) 1 in
  Alcotest.(check bool) "switch has nodes" true (members <> []);
  ignore
    (Injector.inject ~sim ~world:w ~until:10_000.0
       (one_event ~at:100.0 ~duration_s:50.0 (Fault_plan.Switch_outage { switch = 1 })));
  Sim.run_until sim 120.0;
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "node %d partitioned" n) false
        (World.is_up w ~node:n))
    members;
  Alcotest.(check bool) "other switch untouched" true (World.is_up w ~node:0);
  Sim.run_until sim 200.0;
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "node %d healed" n) true
        (World.is_up w ~node:n))
    members

let test_injector_overlapping_downs_refcount () =
  (* A node downed by both its own crash and a switch outage comes back
     only when the longer of the two ends. *)
  let sim, w = setup () in
  let victim = List.hd (Topology.nodes_of_switch (Cluster.topology (cluster ())) 1) in
  let plan =
    {
      Fault_plan.name = "overlap";
      seed = 1;
      events =
        [
          Fault_plan.one_shot ~at:100.0 ~duration_s:200.0
            (Fault_plan.Node_crash { node = victim });
          Fault_plan.one_shot ~at:150.0 ~duration_s:50.0
            (Fault_plan.Switch_outage { switch = 1 });
        ];
    }
  in
  ignore (Injector.inject ~sim ~world:w ~until:10_000.0 plan);
  Sim.run_until sim 250.0;
  (* switch outage over, node crash still active *)
  Alcotest.(check bool) "still down after first repair" false
    (World.is_up w ~node:victim);
  Sim.run_until sim 400.0;
  Alcotest.(check bool) "up after both" true (World.is_up w ~node:victim)

let test_injector_recurring_deterministic () =
  let run () =
    let sim, w = setup () in
    let plan =
      Fault_plan.node_churn ~nodes:[ 1; 5 ] ~mtbf_s:500.0 ~mttr_s:50.0 ~seed:21
        "churn"
    in
    let inj = Injector.inject ~sim ~world:w ~until:5_000.0 plan in
    Sim.run_until sim 6_000.0;
    Injector.log inj
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same occurrence log" true (a = b);
  Alcotest.(check bool) "churn fired" true (a <> [])

let test_injector_empty_plan_bit_identical () =
  (* Injecting an empty plan must not perturb the workload's streams. *)
  let probe with_injector =
    let sim, w = setup () in
    if with_injector then
      ignore
        (Injector.inject ~sim ~world:w ~until:5_000.0
           { Fault_plan.name = "empty"; seed = 99; events = [] });
    Sim.run_until sim 4_000.0;
    World.advance w ~now:4_000.0;
    let snap = Snapshot.of_truth ~time:4_000.0 ~world:w in
    List.map
      (fun n ->
        match Snapshot.node_info snap n with
        | Some i -> i.Snapshot.load.Rm_stats.Running_means.instant
        | None -> nan)
      (Snapshot.usable snap)
  in
  Alcotest.(check bool) "bit-identical" true (probe false = probe true)

(* --- Injector: monitor faults ------------------------------------------------- *)

let monitored_setup () =
  let sim, w = setup () in
  let rng = Rng.create 13 in
  let sys = System.start ~sim ~world:w ~rng ~until:50_000.0 () in
  (sim, w, sys)

let test_injector_daemon_kill_central_relaunches () =
  let sim, w, sys = monitored_setup () in
  let warm = System.warm_up_s System.default_cadence in
  ignore
    (Injector.inject ~sim ~world:w ~system:sys ~until:50_000.0
       (one_event ~at:(warm +. 100.0) (Fault_plan.Daemon_kill { name = "livehosts-0" })));
  Sim.run_until sim (warm +. 101.0);
  let livehosts () =
    List.find (fun d -> Daemon.name d = "livehosts-0") (System.daemons sys)
  in
  Alcotest.(check bool) "killed" false (Daemon.is_alive (livehosts ()));
  (* The Central Monitor's supervision loop is the repair path. *)
  Sim.run_until sim (warm +. 400.0);
  Alcotest.(check bool) "relaunched by central" true (Daemon.is_alive (livehosts ()));
  Alcotest.(check bool) "relaunch counted" true
    (Rm_monitor.Central.relaunches (System.central sys) >= 1)

let test_injector_daemon_kill_requires_system () =
  let sim, w = setup () in
  match
    Injector.inject ~sim ~world:w ~until:1_000.0
      (one_event ~at:10.0 (Fault_plan.Daemon_kill { name = "livehosts-0" }))
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "daemon kill without a system should be rejected"

let test_injector_store_outage_staleness () =
  let sim, w, sys = monitored_setup () in
  let warm = System.warm_up_s System.default_cadence in
  ignore
    (Injector.inject ~sim ~world:w ~system:sys ~until:50_000.0
       (one_event ~at:(warm +. 60.0) ~duration_s:600.0 Fault_plan.Store_outage));
  Sim.run_until sim warm;
  let fresh = Snapshot.max_staleness (System.snapshot sys ~time:warm) in
  Sim.run_until sim (warm +. 620.0);
  let during =
    Snapshot.max_staleness (System.snapshot sys ~time:(warm +. 620.0))
  in
  Alcotest.(check bool) "staleness grows during outage" true
    (during > fresh +. 400.0);
  (* Writes resume after the outage; within a couple of cadences the
     records are fresh again. *)
  Sim.run_until sim (warm +. 2_000.0);
  let after =
    Snapshot.max_staleness (System.snapshot sys ~time:(warm +. 2_000.0))
  in
  Alcotest.(check bool) "staleness recovers" true (after < during)

let suites =
  [
    ( "faults.plan",
      [
        Alcotest.test_case "json round trip" `Quick test_plan_json_round_trip;
        Alcotest.test_case "json literal" `Quick test_plan_of_json_literal;
        Alcotest.test_case "json malformed" `Quick test_plan_of_json_malformed;
        Alcotest.test_case "validate" `Quick test_plan_validate;
        Alcotest.test_case "node churn" `Quick test_node_churn_constructor;
      ] );
    ( "faults.injector",
      [
        Alcotest.test_case "crash and recover" `Quick test_injector_node_crash_recover;
        Alcotest.test_case "permanent crash" `Quick test_injector_permanent_crash;
        Alcotest.test_case "nic degrade" `Quick test_injector_nic_degrade;
        Alcotest.test_case "switch outage" `Quick test_injector_switch_outage;
        Alcotest.test_case "overlapping downs" `Quick
          test_injector_overlapping_downs_refcount;
        Alcotest.test_case "recurring deterministic" `Quick
          test_injector_recurring_deterministic;
        Alcotest.test_case "empty plan bit-identical" `Quick
          test_injector_empty_plan_bit_identical;
        Alcotest.test_case "daemon kill relaunched" `Quick
          test_injector_daemon_kill_central_relaunches;
        Alcotest.test_case "daemon kill needs system" `Quick
          test_injector_daemon_kill_requires_system;
        Alcotest.test_case "store outage staleness" `Quick
          test_injector_store_outage_staleness;
      ] );
  ]

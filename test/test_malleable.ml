(* Tests for rm_malleable and the scheduler's reconfiguration points:
   spec validation, allocation surgery (merge / shrink_to / drop_nodes),
   the redistribution cost model (pure and world-aware), the band
   invariants (never below min, never above max) over the scheduler's
   directive log, cost-gate rejection, shrink-recovery vs requeue on
   node death, and the rigid bit-identity guarantee. *)

module Sim = Rm_engine.Sim
module Rng = Rm_stats.Rng
module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module System = Rm_monitor.System
module Allocation = Rm_core.Allocation
module Request = Rm_core.Request
module Executor = Rm_mpisim.Executor
module App = Rm_mpisim.App
module Scheduler = Rm_sched.Scheduler
module Malleable = Rm_malleable.Malleable

let cluster () = Cluster.homogeneous ~cores:8 ~freq_ghz:3.0 ~nodes_per_switch:[ 4; 4 ] ()

let alloc entries =
  Allocation.make ~policy:"test"
    ~entries:(List.map (fun (node, procs) -> { Allocation.node; procs }) entries)

(* --- spec --------------------------------------------------------------- *)

let test_spec_validation () =
  let s = Malleable.spec ~min_procs:4 ~max_procs:16 () in
  Alcotest.(check int) "min" 4 s.Malleable.min_procs;
  Alcotest.(check int) "max" 16 s.Malleable.max_procs;
  Alcotest.(check (float 1e-9)) "default payload" 64.0 s.Malleable.data_mb_per_proc;
  let invalid f = Alcotest.check_raises "rejected" (Invalid_argument "Malleable.spec") f in
  (try ignore (Malleable.spec ~min_procs:0 ~max_procs:4 ()); Alcotest.fail "min 0"
   with Invalid_argument _ -> ());
  (try ignore (Malleable.spec ~min_procs:8 ~max_procs:4 ()); Alcotest.fail "min > max"
   with Invalid_argument _ -> ());
  (try
     ignore (Malleable.spec ~data_mb_per_proc:(-1.0) ~min_procs:2 ~max_procs:4 ());
     Alcotest.fail "negative payload"
   with Invalid_argument _ -> ());
  ignore invalid

let test_rigid_spec () =
  let s = Malleable.rigid ~procs:8 in
  Alcotest.(check int) "min pinned" 8 s.Malleable.min_procs;
  Alcotest.(check int) "max pinned" 8 s.Malleable.max_procs;
  Alcotest.(check (float 1e-9)) "no payload" 0.0 s.Malleable.data_mb_per_proc;
  Alcotest.(check bool) "rigid" true (Malleable.is_rigid ~pref:8 s);
  Alcotest.(check bool) "band is not rigid" false
    (Malleable.is_rigid ~pref:8 (Malleable.spec ~min_procs:4 ~max_procs:16 ()));
  (* A pinned band around a different preference still moves. *)
  Alcotest.(check bool) "pin off preference is not rigid" false
    (Malleable.is_rigid ~pref:4 s)

(* --- allocation surgery -------------------------------------------------- *)

let test_merge () =
  let base = alloc [ (0, 4); (1, 4) ] in
  let extra = alloc [ (1, 2); (2, 4) ] in
  let m = Malleable.merge ~base ~extra in
  Alcotest.(check int) "total" 14 (Allocation.total_procs m);
  Alcotest.(check int) "node 0" 4 (Allocation.procs_on m ~node:0);
  Alcotest.(check int) "node 1 summed" 6 (Allocation.procs_on m ~node:1);
  Alcotest.(check int) "node 2" 4 (Allocation.procs_on m ~node:2);
  Alcotest.(check string) "policy from base" "test" m.Allocation.policy

let test_shrink_to () =
  let a = alloc [ (0, 4); (1, 4); (2, 4) ] in
  (match Malleable.shrink_to a ~target_procs:6 with
  | Some s ->
    Alcotest.(check int) "total" 6 (Allocation.total_procs s);
    (* Tail entries go first: node 2 dropped entirely, node 1 partially. *)
    Alcotest.(check int) "head kept" 4 (Allocation.procs_on s ~node:0);
    Alcotest.(check int) "middle partial" 2 (Allocation.procs_on s ~node:1);
    Alcotest.(check int) "tail dropped" 0 (Allocation.procs_on s ~node:2)
  | None -> Alcotest.fail "expected a shrink");
  Alcotest.(check bool) "same size is not a shrink" true
    (Malleable.shrink_to a ~target_procs:12 = None);
  Alcotest.(check bool) "zero is not a shrink" true
    (Malleable.shrink_to a ~target_procs:0 = None);
  Alcotest.(check bool) "growth is not a shrink" true
    (Malleable.shrink_to a ~target_procs:16 = None)

let test_drop_nodes () =
  let a = alloc [ (0, 4); (1, 4); (2, 4) ] in
  (match Malleable.drop_nodes a ~dead:[ 1 ] with
  | Some s ->
    Alcotest.(check int) "total" 8 (Allocation.total_procs s);
    Alcotest.(check bool) "dead gone" false (List.mem 1 (Allocation.node_ids s))
  | None -> Alcotest.fail "expected survivors");
  Alcotest.(check bool) "nothing survives" true
    (Malleable.drop_nodes a ~dead:[ 0; 1; 2 ] = None);
  Alcotest.(check bool) "nothing dropped is not a shrink" true
    (Malleable.drop_nodes a ~dead:[ 9 ] = None)

(* --- cost model ---------------------------------------------------------- *)

let test_moved_procs_and_mb () =
  let from_ = alloc [ (0, 4); (1, 4) ] in
  (* Pure grow: the new ranks' data moves in. *)
  Alcotest.(check int) "grow moves delta" 4
    (Malleable.moved_procs ~from_ ~to_:(alloc [ (0, 4); (1, 4); (2, 4) ]));
  (* Pure shrink: the dropped ranks' data moves out. *)
  Alcotest.(check int) "shrink moves delta" 3
    (Malleable.moved_procs ~from_ ~to_:(alloc [ (0, 4); (1, 1) ]));
  (* Rebalance at constant size: max of gained and lost. *)
  Alcotest.(check int) "rebalance" 4
    (Malleable.moved_procs ~from_ ~to_:(alloc [ (0, 8) ]));
  Alcotest.(check int) "no-op moves nothing" 0
    (Malleable.moved_procs ~from_ ~to_:from_);
  let spec = Malleable.spec ~data_mb_per_proc:32.0 ~min_procs:1 ~max_procs:64 () in
  Alcotest.(check (float 1e-9)) "payload scales" 128.0
    (Malleable.redistribution_mb spec ~moved_procs:4)

let test_transfer_delay () =
  Alcotest.(check (float 1e-9)) "overhead + transfer" 14.0
    (Malleable.transfer_delay_s ~moved_mb:1200.0 ~bandwidth_mb_s:100.0
       ~overhead_s:2.0);
  try
    ignore (Malleable.transfer_delay_s ~moved_mb:1.0 ~bandwidth_mb_s:0.0 ~overhead_s:0.0);
    Alcotest.fail "zero bandwidth accepted"
  with Invalid_argument _ -> ()

let test_net_gain () =
  Alcotest.(check (float 1e-9)) "positive when worth it" 70.0
    (Malleable.net_gain_s ~remaining_old_s:200.0 ~remaining_new_s:100.0
       ~delay_s:30.0);
  Alcotest.(check bool) "negative when the delay swamps it" true
    (Malleable.net_gain_s ~remaining_old_s:100.0 ~remaining_new_s:90.0
       ~delay_s:60.0
    < 0.0)

let test_executor_redistribution_delay () =
  let world = World.create ~cluster:(cluster ()) ~scenario:Scenario.quiet ~seed:7 in
  let from_alloc = alloc [ (0, 4); (1, 4) ] in
  let to_alloc = alloc [ (0, 4); (1, 4); (2, 4); (3, 4) ] in
  let delay mb =
    Executor.redistribution_delay_s ~world ~from_alloc ~to_alloc
      ~data_mb_per_proc:mb ~overhead_s:5.0 ()
  in
  Alcotest.(check bool) "at least the overhead" true (delay 64.0 >= 5.0);
  Alcotest.(check bool) "monotone in payload" true (delay 640.0 > delay 64.0);
  (* Nothing changes shape: only the fixed overhead is charged. *)
  Alcotest.(check (float 1e-6)) "no-op is overhead only" 5.0
    (Executor.redistribution_delay_s ~world ~from_alloc ~to_alloc:from_alloc
       ~data_mb_per_proc:64.0 ~overhead_s:5.0 ())

(* --- scheduler reconfiguration points ------------------------------------ *)

(* Strong scaling: fixed total work split across the ranks, so growing
   a job genuinely shortens its remaining time and the cost gate has a
   real benefit to weigh. ~500 s at 8 ranks on the 8x8-core cluster. *)
let strong_app ?(total_gflops = 12_000.0) ~ranks () =
  let iterations = 40 in
  let flops_per_rank =
    total_gflops *. 1e9 /. float_of_int ranks /. float_of_int iterations
  in
  App.make ~name:"strong" ~ranks ~iterations
    ~phase:(fun ~iter:_ ->
      {
        App.flops_per_rank = (fun _ -> flops_per_rank);
        messages =
          (if ranks <= 1 then []
           else List.init ranks (fun r -> (r, (r + 1) mod ranks, 1e4)));
        allreduce_bytes = 8.0;
      })
    ()

(* Fast negotiation so directives fire within a short test run. *)
let eager_malleable =
  {
    Malleable.default_config with
    Malleable.negotiation_period_s = 60.0;
    min_gain_s = 1.0;
    reconfig_overhead_s = 1.0;
  }

let sched_setup ?(config = Scheduler.default_config) ?(seed = 3) () =
  let sim = Sim.create () in
  let world = World.create ~cluster:(cluster ()) ~scenario:Scenario.quiet ~seed in
  let rng = Rng.create (seed + 10) in
  let horizon = 100_000.0 in
  let monitor = System.start ~sim ~world ~rng ~until:horizon () in
  let sched = Scheduler.create ~sim ~world ~monitor ~config ~rng ~horizon () in
  (sim, world, sched)

let accepted_of kind log =
  List.filter
    (fun (r : Malleable.record) ->
      r.Malleable.kind = kind && r.Malleable.verdict = Malleable.Accepted)
    log

let test_grow_stays_within_band () =
  let config =
    { Scheduler.default_config with Scheduler.malleable = Some eager_malleable }
  in
  let sim, _world, sched = sched_setup ~config () in
  let spec = Malleable.spec ~min_procs:4 ~max_procs:16 () in
  let id =
    Scheduler.submit sched ~name:"growable" ~at:1000.0 ~malleable:spec
      ~request:(Request.make ~ppn:4 ~alpha:0.5 ~procs:8 ())
      ~app_of:(fun ~ranks -> strong_app ~ranks ())
      ()
  in
  Sim.run_until sim 20_000.0;
  (match Scheduler.state sched id with
  | Scheduler.Finished _ -> ()
  | _ -> Alcotest.fail "job did not finish");
  let log = Scheduler.malleable_log sched in
  let grows = accepted_of Malleable.Grow log in
  Alcotest.(check bool) "an idle-capacity grow fired" true (grows <> []);
  List.iter
    (fun (r : Malleable.record) ->
      Alcotest.(check bool)
        (Printf.sprintf "accepted %s at t=%.0f within [4..16]"
           (Malleable.kind_name r.Malleable.kind) r.Malleable.time)
        true
        (r.Malleable.to_procs <= 16 && r.Malleable.to_procs >= 4))
    (List.filter (fun (r : Malleable.record) -> r.Malleable.verdict = Malleable.Accepted) log);
  List.iter
    (fun (r : Malleable.record) ->
      Alcotest.(check bool) "accepted grow paid a delay" true
        (r.Malleable.delay_s > 0.0 && r.Malleable.moved_mb > 0.0))
    grows

let test_shrink_admits_blocked_head () =
  (* Exclusive mode so a full cluster genuinely blocks the queue head;
     the wide malleable job must shrink to let the rigid newcomer in. *)
  let config =
    {
      Scheduler.default_config with
      Scheduler.exclusive = true;
      malleable = Some eager_malleable;
    }
  in
  let sim, _world, sched = sched_setup ~config () in
  let wide_spec = Malleable.spec ~min_procs:40 ~max_procs:64 () in
  let wide =
    Scheduler.submit sched ~name:"wide" ~at:1000.0 ~malleable:wide_spec
      ~request:(Request.make ~ppn:8 ~alpha:0.5 ~procs:64 ())
      ~app_of:(fun ~ranks -> strong_app ~total_gflops:40_000.0 ~ranks ())
      ()
  in
  let late =
    Scheduler.submit sched ~name:"late" ~at:1100.0
      ~request:(Request.make ~ppn:8 ~alpha:0.5 ~procs:8 ())
      ~app_of:(fun ~ranks -> strong_app ~total_gflops:1_000.0 ~ranks ())
      ()
  in
  Sim.run_until sim 50_000.0;
  let log = Scheduler.malleable_log sched in
  let shrinks = accepted_of Malleable.Shrink_admit log in
  Alcotest.(check bool) "a shrink-to-admit fired" true (shrinks <> []);
  List.iter
    (fun (r : Malleable.record) ->
      Alcotest.(check bool) "never below min" true (r.Malleable.to_procs >= 40);
      Alcotest.(check bool) "strictly smaller" true
        (r.Malleable.to_procs < r.Malleable.from_procs))
    shrinks;
  (match Scheduler.state sched late with
  | Scheduler.Finished _ -> ()
  | _ -> Alcotest.fail "blocked head was never admitted");
  match Scheduler.state sched wide with
  | Scheduler.Finished _ -> ()
  | _ -> Alcotest.fail "shrunk victim did not finish"

let test_cost_gate_rejects () =
  (* An unmeetable margin: every directive is evaluated and rejected,
     and the schedule is left alone. *)
  let config =
    {
      Scheduler.default_config with
      Scheduler.malleable =
        Some { eager_malleable with Malleable.min_gain_s = 1e9 };
    }
  in
  let sim, _world, sched = sched_setup ~config () in
  let id =
    Scheduler.submit sched ~name:"tempting" ~at:1000.0
      ~malleable:(Malleable.spec ~min_procs:4 ~max_procs:16 ())
      ~request:(Request.make ~ppn:4 ~alpha:0.5 ~procs:8 ())
      ~app_of:(fun ~ranks -> strong_app ~ranks ())
      ()
  in
  Sim.run_until sim 20_000.0;
  let log = Scheduler.malleable_log sched in
  Alcotest.(check bool) "directives were evaluated" true (log <> []);
  List.iter
    (fun (r : Malleable.record) ->
      match r.Malleable.verdict with
      | Malleable.Rejected _ ->
        Alcotest.(check (float 1e-9)) "no delay charged" 0.0 r.Malleable.delay_s
      | Malleable.Accepted -> Alcotest.fail "directive beat an 1e9 s margin")
    log;
  match Scheduler.state sched id with
  | Scheduler.Finished o -> Alcotest.(check int) "ran at its preference" 8 o.Scheduler.procs
  | _ -> Alcotest.fail "job did not finish"

let failure_config ~malleable =
  {
    Scheduler.default_config with
    Scheduler.node_check_period_s = Some 5.0;
    malleable;
  }

let run_until_running sim sched id =
  (* Step until the job has nodes; it starts shortly after submission. *)
  let rec go t =
    if t > 5000.0 then Alcotest.fail "job never started";
    Sim.run_until sim t;
    match Scheduler.state sched id with
    | Scheduler.Running { nodes; _ } -> nodes
    | _ -> go (t +. 50.0)
  in
  go 1050.0

let test_shrink_recovery_on_node_death () =
  let config = failure_config ~malleable:(Some eager_malleable) in
  let sim, world, sched = sched_setup ~config () in
  let id =
    Scheduler.submit sched ~name:"survivor" ~at:1000.0
      ~malleable:(Malleable.spec ~min_procs:4 ~max_procs:16 ())
      ~request:(Request.make ~ppn:4 ~alpha:0.5 ~procs:16 ())
      ~app_of:(fun ~ranks -> strong_app ~total_gflops:48_000.0 ~ranks ())
      ()
  in
  let nodes = run_until_running sim sched id in
  let victim = List.hd nodes in
  (* Kill late in the ~1000 s run: by then the elapsed work a requeue
     would redo outweighs the survivors' slowdown, so the cost model
     must pick the shrink. *)
  Sim.run_until sim 1800.0;
  World.set_down world ~node:victim;
  Sim.run_until sim 30_000.0;
  let recoveries = accepted_of Malleable.Shrink_failure (Scheduler.malleable_log sched) in
  Alcotest.(check int) "one shrink recovery" 1 (List.length recoveries);
  let r = List.hd recoveries in
  Alcotest.(check int) "dropped the dead node's ranks" 12 r.Malleable.to_procs;
  Alcotest.(check bool) "only the dead node's work wasted" true
    (Scheduler.wasted_node_seconds sched > 0.0);
  match Scheduler.state sched id with
  | Scheduler.Finished o ->
    Alcotest.(check int) "no requeue" 0 o.Scheduler.requeues;
    Alcotest.(check bool) "dead node gone from the placement" false
      (List.mem victim o.Scheduler.nodes)
  | _ -> Alcotest.fail "job did not finish after shrink recovery"

let test_shrink_recovery_respects_min () =
  (* min_procs equal to the full width: the survivors can never
     satisfy the floor, so the failure takes the requeue path and the
     directive log shows the rejection. *)
  let config = failure_config ~malleable:(Some eager_malleable) in
  let sim, world, sched = sched_setup ~config () in
  let id =
    Scheduler.submit sched ~name:"floored" ~at:1000.0
      ~malleable:(Malleable.spec ~min_procs:16 ~max_procs:16 ())
      ~request:(Request.make ~ppn:4 ~alpha:0.5 ~procs:16 ())
      ~app_of:(fun ~ranks -> strong_app ~total_gflops:48_000.0 ~ranks ())
      ()
  in
  let nodes = run_until_running sim sched id in
  let victim = List.hd nodes in
  Sim.run_until sim 1300.0;
  World.set_down world ~node:victim;
  Sim.run_until sim 1400.0;
  World.set_up world ~node:victim;
  Sim.run_until sim 60_000.0;
  let log = Scheduler.malleable_log sched in
  Alcotest.(check bool) "no accepted shrink recovery" true
    (accepted_of Malleable.Shrink_failure log = []);
  Alcotest.(check bool) "the floor rejection is logged" true
    (List.exists
       (fun (r : Malleable.record) ->
         r.Malleable.kind = Malleable.Shrink_failure
         && r.Malleable.verdict <> Malleable.Accepted)
       log);
  match Scheduler.state sched id with
  | Scheduler.Finished o ->
    Alcotest.(check bool) "requeued instead" true (o.Scheduler.requeues >= 1)
  | _ -> Alcotest.fail "job did not finish after requeue"

(* --- rigid bit-identity --------------------------------------------------- *)

let rigid_run ~malleable () =
  let config = { Scheduler.default_config with Scheduler.malleable } in
  let sim, _world, sched = sched_setup ~config ~seed:11 () in
  let submit ~name ~at ~procs =
    ignore
      (Scheduler.submit sched ~name ~at
         ?malleable:
           (match malleable with
           | None -> None
           | Some _ -> Some (Malleable.rigid ~procs))
         ~request:(Request.make ~ppn:4 ~alpha:0.5 ~procs ())
         ~app_of:(fun ~ranks -> strong_app ~total_gflops:2000.0 ~ranks ())
         ())
  in
  submit ~name:"a" ~at:1000.0 ~procs:8;
  submit ~name:"b" ~at:1030.0 ~procs:12;
  submit ~name:"c" ~at:1060.0 ~procs:8;
  Sim.run_until sim 50_000.0;
  (Scheduler.finished sched, Scheduler.malleable_log sched)

let test_rigid_bit_identity () =
  (* Malleability on, but every job pinned: the schedule must be
     bit-identical to malleability off — same outcomes, same floats —
     and the negotiation phase must never log a directive. *)
  let off, log_off = rigid_run ~malleable:None () in
  let on, log_on = rigid_run ~malleable:(Some Malleable.default_config) () in
  Alcotest.(check int) "all finished (off)" 3 (List.length off);
  Alcotest.(check bool) "outcome lists bit-identical" true (off = on);
  Alcotest.(check bool) "no directives off" true (log_off = []);
  Alcotest.(check bool) "no directives on rigid jobs" true (log_on = [])

let suites =
  [
    ( "malleable.model",
      [
        Alcotest.test_case "spec validation" `Quick test_spec_validation;
        Alcotest.test_case "rigid spec" `Quick test_rigid_spec;
        Alcotest.test_case "merge" `Quick test_merge;
        Alcotest.test_case "shrink_to" `Quick test_shrink_to;
        Alcotest.test_case "drop_nodes" `Quick test_drop_nodes;
        Alcotest.test_case "moved procs and payload" `Quick
          test_moved_procs_and_mb;
        Alcotest.test_case "transfer delay" `Quick test_transfer_delay;
        Alcotest.test_case "net gain" `Quick test_net_gain;
        Alcotest.test_case "world-aware redistribution delay" `Quick
          test_executor_redistribution_delay;
      ] );
    ( "malleable.sched",
      [
        Alcotest.test_case "grow stays within band" `Quick
          test_grow_stays_within_band;
        Alcotest.test_case "shrink admits a blocked head" `Quick
          test_shrink_admits_blocked_head;
        Alcotest.test_case "cost gate rejects" `Quick test_cost_gate_rejects;
        Alcotest.test_case "shrink recovery on node death" `Quick
          test_shrink_recovery_on_node_death;
        Alcotest.test_case "shrink recovery respects the floor" `Quick
          test_shrink_recovery_respects_min;
        Alcotest.test_case "rigid jobs are bit-identical" `Quick
          test_rigid_bit_identity;
      ] );
  ]

(* Tests for rm_monitor: store, daemons, pair schedule, probes, central
   monitor failover, snapshots. *)

module Rng = Rm_stats.Rng
module Sim = Rm_engine.Sim
module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module Store = Rm_monitor.Store
module Daemon = Rm_monitor.Daemon
module Pair_schedule = Rm_monitor.Pair_schedule
module Central = Rm_monitor.Central
module Snapshot = Rm_monitor.Snapshot
module System = Rm_monitor.System
module Running_means = Rm_stats.Running_means

let cluster () = Cluster.homogeneous ~cores:8 ~nodes_per_switch:[ 3; 3 ] ()

let world ?(scenario = Scenario.normal) ?(seed = 1) () =
  World.create ~cluster:(cluster ()) ~scenario ~seed

(* --- Store ------------------------------------------------------------- *)

let view v : Running_means.view = { instant = v; m1 = v; m5 = v; m15 = v }

let record node time load : Store.node_record =
  {
    Store.node;
    written_at = time;
    users = 1;
    load = view load;
    util_pct = view 10.0;
    nic_mb_s = view 0.0;
    mem_avail_gb = view 12.0;
  }

let test_store_node_roundtrip () =
  let s = Store.create ~node_count:4 in
  Alcotest.(check bool) "empty" true (Store.read_node s ~node:2 = None);
  Store.write_node s (record 2 5.0 1.5);
  (match Store.read_node s ~node:2 with
  | Some r ->
    Alcotest.(check (float 1e-9)) "time" 5.0 r.Store.written_at;
    Alcotest.(check (float 1e-9)) "load" 1.5 r.Store.load.Running_means.m1
  | None -> Alcotest.fail "record missing");
  (* Last write wins. *)
  Store.write_node s (record 2 9.0 3.0);
  match Store.read_node s ~node:2 with
  | Some r -> Alcotest.(check (float 1e-9)) "updated" 9.0 r.Store.written_at
  | None -> Alcotest.fail "record missing"

let test_store_livehosts () =
  let s = Store.create ~node_count:4 in
  Alcotest.(check bool) "none yet" true (Store.read_livehosts s = None);
  Store.write_livehosts s ~time:3.0 ~nodes:[ 0; 2 ];
  match Store.read_livehosts s with
  | Some (t, nodes) ->
    Alcotest.(check (float 1e-9)) "time" 3.0 t;
    Alcotest.(check (list int)) "nodes" [ 0; 2 ] nodes
  | None -> Alcotest.fail "livehosts missing"

let test_store_pair_symmetry () =
  let s = Store.create ~node_count:4 in
  Store.write_bandwidth s ~time:1.0 ~src:3 ~dst:1 ~mb_s:42.0;
  (match Store.read_bandwidth s ~src:1 ~dst:3 with
  | Some (_, bw) -> Alcotest.(check (float 1e-9)) "symmetric read" 42.0 bw
  | None -> Alcotest.fail "bandwidth missing");
  Store.write_latency s ~time:2.0 ~src:0 ~dst:2 ~us:100.0;
  match Store.read_latency s ~src:2 ~dst:0 with
  | Some (_, us) -> Alcotest.(check (float 1e-9)) "latency symmetric" 100.0 us
  | None -> Alcotest.fail "latency missing"

let test_store_matrices () =
  let s = Store.create ~node_count:3 in
  Store.write_bandwidth s ~time:1.0 ~src:0 ~dst:1 ~mb_s:50.0;
  let m = Store.bandwidth_matrix s ~default:118.0 in
  Alcotest.(check (float 1e-9)) "measured" 50.0 (Rm_stats.Matrix.get m 0 1);
  Alcotest.(check (float 1e-9)) "default" 118.0 (Rm_stats.Matrix.get m 1 2);
  Alcotest.(check (float 1e-9)) "diagonal" infinity (Rm_stats.Matrix.get m 2 2)

let test_store_self_pair_rejected () =
  let s = Store.create ~node_count:3 in
  Alcotest.check_raises "self" (Invalid_argument "Store: self pair") (fun () ->
      Store.write_bandwidth s ~time:0.0 ~src:1 ~dst:1 ~mb_s:1.0)

let test_store_save_load_roundtrip () =
  let s = Store.create ~node_count:4 in
  Store.write_node s (record 1 5.0 1.5);
  Store.write_node s (record 3 7.5 0.25);
  Store.write_livehosts s ~time:8.0 ~nodes:[ 0; 1; 3 ];
  Store.write_bandwidth s ~time:9.0 ~src:0 ~dst:3 ~mb_s:44.5;
  Store.write_latency s ~time:9.5 ~src:1 ~dst:2 ~us:123.75;
  let s2 = Store.load (Store.save s) in
  Alcotest.(check int) "node count" 4 (Store.node_count s2);
  (match Store.read_node s2 ~node:1 with
  | Some r ->
    Alcotest.(check (float 1e-12)) "written_at" 5.0 r.Store.written_at;
    Alcotest.(check (float 1e-12)) "load" 1.5 r.Store.load.Running_means.m1
  | None -> Alcotest.fail "node 1 missing");
  Alcotest.(check bool) "unwritten node stays empty" true
    (Store.read_node s2 ~node:2 = None);
  (match Store.read_livehosts s2 with
  | Some (t, nodes) ->
    Alcotest.(check (float 1e-12)) "live time" 8.0 t;
    Alcotest.(check (list int)) "live nodes" [ 0; 1; 3 ] nodes
  | None -> Alcotest.fail "livehosts missing");
  (match Store.read_bandwidth s2 ~src:3 ~dst:0 with
  | Some (t, v) ->
    Alcotest.(check (float 1e-12)) "bw time" 9.0 t;
    Alcotest.(check (float 1e-12)) "bw" 44.5 v
  | None -> Alcotest.fail "bw missing");
  match Store.read_latency s2 ~src:2 ~dst:1 with
  | Some (_, v) -> Alcotest.(check (float 1e-12)) "lat" 123.75 v
  | None -> Alcotest.fail "lat missing"

let test_store_load_rejects_garbage () =
  Alcotest.(check bool) "bad header" true
    (try ignore (Store.load "nonsense"); false with Failure _ -> true);
  Alcotest.(check bool) "bad record" true
    (try ignore (Store.load "store v1 2\nwhatever"); false
     with Failure _ -> true)

let test_store_empty_roundtrip () =
  let s2 = Store.load (Store.save (Store.create ~node_count:3)) in
  Alcotest.(check int) "count" 3 (Store.node_count s2);
  Alcotest.(check bool) "no livehosts" true (Store.read_livehosts s2 = None)

(* --- Daemon -------------------------------------------------------------- *)

let test_daemon_ticks () =
  let sim = Sim.create () in
  let count = ref 0 in
  let d =
    Daemon.launch ~sim ~name:"d" ~node:0 ~period:10.0 ~until:100.0
      ~action:(fun _ -> incr count)
      ()
  in
  Sim.run_until sim 100.0;
  Alcotest.(check bool) "ticked ~11x" true (!count >= 10 && !count <= 11);
  Alcotest.(check int) "tick_count" !count (Daemon.tick_count d)

let test_daemon_crash_stops_ticks () =
  let sim = Sim.create () in
  let count = ref 0 in
  let d =
    Daemon.launch ~sim ~name:"d" ~node:0 ~period:10.0 ~until:1000.0
      ~action:(fun _ -> incr count)
      ()
  in
  Sim.run_until sim 50.0;
  let at_crash = !count in
  Daemon.crash d;
  Alcotest.(check bool) "dead" false (Daemon.is_alive d);
  Sim.run_until sim 200.0;
  Alcotest.(check int) "no more ticks" at_crash !count

let test_daemon_relaunch () =
  let sim = Sim.create () in
  let count = ref 0 in
  let d =
    Daemon.launch ~sim ~name:"d" ~node:0 ~period:10.0 ~until:1000.0
      ~action:(fun _ -> incr count)
      ()
  in
  Sim.run_until sim 30.0;
  Daemon.crash d;
  Sim.run_until sim 100.0;
  let before = !count in
  Daemon.relaunch d ~sim ~node:3;
  Sim.run_until sim 200.0;
  Alcotest.(check bool) "ticks resumed" true (!count > before);
  Alcotest.(check int) "moved node" 3 (Daemon.node d);
  Alcotest.(check bool) "alive" true (Daemon.is_alive d)

let test_daemon_skips_down_host () =
  let sim = Sim.create () in
  let up = ref true in
  let count = ref 0 in
  let _d =
    Daemon.launch ~sim ~name:"d" ~node:0 ~period:10.0
      ~host_up:(fun _ -> !up)
      ~until:1000.0
      ~action:(fun _ -> incr count)
      ()
  in
  Sim.run_until sim 55.0;
  let before = !count in
  up := false;
  Sim.run_until sim 150.0;
  Alcotest.(check int) "skipped while down" before !count;
  up := true;
  Sim.run_until sim 250.0;
  Alcotest.(check bool) "resumed when up" true (!count > before)

(* --- Pair_schedule --------------------------------------------------------- *)

let test_pairs_cover_even () =
  Alcotest.(check bool) "6 nodes" true
    (Pair_schedule.all_pairs_covered [ 0; 1; 2; 3; 4; 5 ])

let test_pairs_cover_odd () =
  Alcotest.(check bool) "5 nodes" true (Pair_schedule.all_pairs_covered [ 0; 1; 2; 3; 4 ])

let test_pairs_rounds_structure () =
  let rounds = Pair_schedule.rounds [ 10; 20; 30; 40 ] in
  Alcotest.(check int) "n-1 rounds" 3 (List.length rounds);
  List.iter
    (fun round -> Alcotest.(check int) "n/2 pairs" 2 (List.length round))
    rounds

let test_pairs_two_nodes () =
  let rounds = Pair_schedule.rounds [ 7; 9 ] in
  Alcotest.(check int) "one round" 1 (List.length rounds);
  Alcotest.(check (list (pair int int))) "the pair" [ (7, 9) ] (List.hd rounds)

let qcheck = QCheck_alcotest.to_alcotest

let prop_pairs_always_cover =
  QCheck.Test.make ~name:"tournament covers all pairs exactly once" ~count:50
    QCheck.(int_range 2 24)
    (fun n -> Pair_schedule.all_pairs_covered (List.init n (fun i -> i * 3)))

(* --- System + Snapshot ------------------------------------------------------- *)

let started_system () =
  let sim = Sim.create () in
  let w = world () in
  let rng = Rng.create 5 in
  let sys = System.start ~sim ~world:w ~rng ~until:10_000.0 () in
  (sim, w, sys)

let test_system_populates_store () =
  let sim, _w, sys = started_system () in
  Sim.run_until sim (System.warm_up_s System.default_cadence);
  let snap = System.snapshot sys ~time:(Sim.now sim) in
  Alcotest.(check int) "all nodes usable" 6 (List.length (Snapshot.usable snap));
  (* Bandwidth measured for at least one pair. *)
  let bw = Rm_stats.Matrix.get snap.Snapshot.bw_mb_s 0 1 in
  Alcotest.(check bool) "bandwidth measured" true (Float.is_finite bw && bw > 0.0);
  let lat = Rm_stats.Matrix.get snap.Snapshot.lat_us 0 5 in
  Alcotest.(check bool) "latency measured" true (lat > 0.0)

let test_system_running_means_progress () =
  let sim, _w, sys = started_system () in
  Sim.run_until sim 1200.0;
  let snap = System.snapshot sys ~time:1200.0 in
  match Snapshot.node_info snap 0 with
  | Some info ->
    Alcotest.(check bool) "m15 populated" true
      (info.Snapshot.load.Running_means.m15 >= 0.0);
    Alcotest.(check bool) "fresh" true (Snapshot.max_staleness snap < 60.0)
  | None -> Alcotest.fail "node record missing"

let test_snapshot_excludes_down_nodes () =
  let sim, w, sys = started_system () in
  Sim.run_until sim 600.0;
  World.set_down w ~node:4;
  Sim.run_until sim 700.0;
  let snap = System.snapshot sys ~time:700.0 in
  Alcotest.(check bool) "node 4 not live" false
    (List.mem 4 snap.Snapshot.live)

let test_snapshot_of_truth () =
  let w = world () in
  World.advance w ~now:3600.0;
  let snap = Snapshot.of_truth ~time:3600.0 ~world:w in
  Alcotest.(check int) "all usable" 6 (List.length (Snapshot.usable snap));
  Alcotest.(check (float 1e-9)) "no staleness" 0.0 (Snapshot.max_staleness snap);
  match Snapshot.node_info snap 1 with
  | Some info ->
    Alcotest.(check (float 1e-9)) "views flat"
      info.Snapshot.load.Running_means.m1 info.Snapshot.load.Running_means.m15
  | None -> Alcotest.fail "missing info"

let test_monitor_tracks_truth () =
  (* Measured node state must track ground truth within noise + lag. *)
  let sim, w, sys = started_system () in
  Sim.run_until sim 1500.0;
  let snap = System.snapshot sys ~time:1500.0 in
  List.iter
    (fun node ->
      match Snapshot.node_info snap node with
      | Some info ->
        let measured = info.Snapshot.load.Running_means.instant in
        let truth = World.cpu_load w ~node in
        (* 2% multiplicative noise, plus the world having moved a little
           since the last 3-10 s sample. *)
        Alcotest.(check bool)
          (Printf.sprintf "node %d load measured %.3f vs truth %.3f" node
             measured truth)
          true
          (Float.abs (measured -. truth) <= (0.25 *. truth) +. 0.35)
      | None -> Alcotest.fail "missing record")
    (Snapshot.usable snap)

let test_monitor_bandwidth_tracks_truth () =
  let sim, w, sys = started_system () in
  Sim.run_until sim 1500.0;
  let snap = System.snapshot sys ~time:1500.0 in
  let network = World.network w in
  (* Bandwidth probes are at most one 5-min period old; background flows
     churn, so allow a generous band but demand the right magnitude. *)
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          if u < v then begin
            incr total;
            let measured = Rm_stats.Matrix.get snap.Snapshot.bw_mb_s u v in
            let truth =
              Rm_netsim.Network.available_bandwidth_mb_s network ~src:u ~dst:v
            in
            if measured > 0.3 *. truth && measured < 3.0 *. truth then incr ok
          end)
        (Snapshot.usable snap))
    (Snapshot.usable snap);
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d pairs within 3x of truth" !ok !total)
    true
    (float_of_int !ok >= 0.7 *. float_of_int !total)

let test_pipeline_determinism () =
  (* The entire stack — world, daemons, allocation, execution — must be
     a pure function of the seed. *)
  let run () =
    let sim = Sim.create () in
    let w = world ~seed:31 () in
    let rng = Rng.create 77 in
    let sys = System.start ~sim ~world:w ~rng ~until:5000.0 () in
    Sim.run_until sim 1200.0;
    let snap = System.snapshot sys ~time:1200.0 in
    match
      Rm_core.Policies.allocate ~policy:Rm_core.Policies.Network_load_aware
        ~snapshot:snap ~weights:Rm_core.Weights.paper_default
        ~request:(Rm_core.Request.make ~ppn:2 ~procs:8 ())
        ~rng ()
    with
    | Error _ -> Alcotest.fail "allocation failed"
    | Ok allocation ->
      let app =
        Rm_apps.Minimd.app ~config:(Rm_apps.Minimd.default_config ~s:8) ~ranks:8
      in
      let stats = Rm_mpisim.Executor.run ~world:w ~allocation ~app () in
      (Rm_core.Allocation.node_ids allocation,
       stats.Rm_mpisim.Executor.total_time_s)
  in
  let nodes1, t1 = run () in
  let nodes2, t2 = run () in
  Alcotest.(check (list int)) "same nodes" nodes1 nodes2;
  Alcotest.(check (float 1e-12)) "same time" t1 t2

let test_daemon_crash_storm () =
  (* Crash random daemons repeatedly; the central monitor must keep the
     fleet alive and the store fresh. *)
  let sim, _w, sys = started_system () in
  let rng = Rng.create 3 in
  Sim.run_until sim 1000.0;
  let daemons = Array.of_list (System.daemons sys) in
  for round = 1 to 10 do
    Daemon.crash daemons.(Rng.int rng (Array.length daemons));
    Daemon.crash daemons.(Rng.int rng (Array.length daemons));
    Sim.run_until sim (1000.0 +. (float_of_int round *. 100.0))
  done;
  Sim.run_until sim 2500.0;
  let alive = Array.to_list daemons |> List.filter Daemon.is_alive in
  Alcotest.(check int) "all daemons alive again" (Array.length daemons)
    (List.length alive);
  let snap = System.snapshot sys ~time:2500.0 in
  Alcotest.(check bool) "store fresh" true (Snapshot.max_staleness snap < 120.0)

(* --- Central failover --------------------------------------------------------- *)

let central_setup () =
  let sim = Sim.create () in
  let w = world () in
  let count = ref 0 in
  let victim =
    Daemon.launch ~sim ~name:"victim" ~node:2 ~period:5.0 ~until:100_000.0
      ~action:(fun _ -> incr count)
      ()
  in
  let central =
    Central.launch ~sim ~world:w ~rng:(Rng.create 9) ~supervised:[ victim ]
      ~until:100_000.0 ()
  in
  (sim, central, victim, count)

let test_central_relaunches_crashed_daemon () =
  let sim, central, victim, _count = central_setup () in
  Sim.run_until sim 50.0;
  Daemon.crash victim;
  Sim.run_until sim 200.0;
  Alcotest.(check bool) "relaunched" true (Daemon.is_alive victim);
  Alcotest.(check bool) "counted" true (Central.relaunches central >= 1)

let test_central_master_failover () =
  let sim, central, _victim, _count = central_setup () in
  Sim.run_until sim 50.0;
  Alcotest.(check int) "two instances" 2 (Central.instance_count central);
  Central.crash_master central;
  Sim.run_until sim 300.0;
  (* Slave promoted and spawned a fresh slave. *)
  Alcotest.(check bool) "master exists" true (Central.master central <> None);
  Alcotest.(check int) "two instances again" 2 (Central.instance_count central)

let test_central_survives_slave_crash () =
  let sim, central, _victim, _count = central_setup () in
  Sim.run_until sim 50.0;
  Central.crash_slave central;
  Sim.run_until sim 300.0;
  Alcotest.(check int) "slave regrown" 2 (Central.instance_count central)

let test_central_double_crash_daemons_continue () =
  let sim, central, victim, count = central_setup () in
  Sim.run_until sim 50.0;
  Central.crash_master central;
  Central.crash_slave central;
  Sim.run_until sim 300.0;
  Alcotest.(check int) "no central left" 0 (Central.instance_count central);
  (* The monitoring daemon keeps ticking (paper §4)... *)
  let before = !count in
  Sim.run_until sim 400.0;
  Alcotest.(check bool) "daemon still ticks" true (!count > before);
  (* ...but a crash is now permanent. *)
  Daemon.crash victim;
  Sim.run_until sim 600.0;
  Alcotest.(check bool) "no relaunch without central" false (Daemon.is_alive victim)

let test_central_double_crash_stops_relaunches () =
  (* The relaunch counter itself must freeze once both instances are
     gone: supervision work, not just the victim's fate. *)
  let sim, central, victim, _count = central_setup () in
  Sim.run_until sim 50.0;
  Daemon.crash victim;
  Sim.run_until sim 200.0;
  Alcotest.(check bool) "supervision worked while alive" true
    (Central.relaunches central >= 1);
  Central.crash_master central;
  Central.crash_slave central;
  Sim.run_until sim 250.0;
  Alcotest.(check int) "no central left" 0 (Central.instance_count central);
  let frozen = Central.relaunches central in
  Daemon.crash victim;
  Sim.run_until sim 1_000.0;
  Alcotest.(check int) "relaunch counter frozen" frozen
    (Central.relaunches central);
  Alcotest.(check int) "still no central" 0 (Central.instance_count central)

let suites =
  [
    ( "monitor.store",
      [
        Alcotest.test_case "node roundtrip" `Quick test_store_node_roundtrip;
        Alcotest.test_case "livehosts" `Quick test_store_livehosts;
        Alcotest.test_case "pair symmetry" `Quick test_store_pair_symmetry;
        Alcotest.test_case "matrices" `Quick test_store_matrices;
        Alcotest.test_case "self pair rejected" `Quick test_store_self_pair_rejected;
        Alcotest.test_case "save/load roundtrip" `Quick test_store_save_load_roundtrip;
        Alcotest.test_case "load rejects garbage" `Quick test_store_load_rejects_garbage;
        Alcotest.test_case "empty roundtrip" `Quick test_store_empty_roundtrip;
      ] );
    ( "monitor.daemon",
      [
        Alcotest.test_case "ticks" `Quick test_daemon_ticks;
        Alcotest.test_case "crash stops ticks" `Quick test_daemon_crash_stops_ticks;
        Alcotest.test_case "relaunch" `Quick test_daemon_relaunch;
        Alcotest.test_case "skips down host" `Quick test_daemon_skips_down_host;
      ] );
    ( "monitor.pair_schedule",
      [
        Alcotest.test_case "covers even" `Quick test_pairs_cover_even;
        Alcotest.test_case "covers odd" `Quick test_pairs_cover_odd;
        Alcotest.test_case "round structure" `Quick test_pairs_rounds_structure;
        Alcotest.test_case "two nodes" `Quick test_pairs_two_nodes;
        qcheck prop_pairs_always_cover;
      ] );
    ( "monitor.system",
      [
        Alcotest.test_case "populates store" `Quick test_system_populates_store;
        Alcotest.test_case "running means progress" `Quick
          test_system_running_means_progress;
        Alcotest.test_case "snapshot excludes down nodes" `Quick
          test_snapshot_excludes_down_nodes;
        Alcotest.test_case "snapshot of truth" `Quick test_snapshot_of_truth;
      ] );
    ( "monitor.integration",
      [
        Alcotest.test_case "node state tracks truth" `Quick test_monitor_tracks_truth;
        Alcotest.test_case "bandwidth tracks truth" `Quick
          test_monitor_bandwidth_tracks_truth;
        Alcotest.test_case "pipeline determinism" `Quick test_pipeline_determinism;
        Alcotest.test_case "daemon crash storm" `Quick test_daemon_crash_storm;
      ] );
    ( "monitor.central",
      [
        Alcotest.test_case "relaunches crashed daemon" `Quick
          test_central_relaunches_crashed_daemon;
        Alcotest.test_case "master failover" `Quick test_central_master_failover;
        Alcotest.test_case "slave crash" `Quick test_central_survives_slave_crash;
        Alcotest.test_case "double crash" `Quick
          test_central_double_crash_daemons_continue;
        Alcotest.test_case "double crash stops relaunches" `Quick
          test_central_double_crash_stops_relaunches;
      ] );
  ]

(* Tests for Trace_replay, World record/replay round-trip, and Hostfile. *)

module Trace_replay = Rm_workload.Trace_replay
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module Cluster = Rm_cluster.Cluster
module Allocation = Rm_core.Allocation
module Hostfile = Rm_core.Hostfile

let check_float = Alcotest.(check (float 1e-9))

let cluster () = Cluster.homogeneous ~cores:8 ~nodes_per_switch:[ 2; 2 ] ()

(* --- series -------------------------------------------------------------- *)

let test_series_step_lookup () =
  let s = Trace_replay.series ~times:[| 0.0; 10.0; 20.0 |] ~values:[| 1.0; 2.0; 3.0 |] in
  check_float "before start" 1.0 (Trace_replay.value_at s (-5.0));
  check_float "exact" 2.0 (Trace_replay.value_at s 10.0);
  check_float "between" 2.0 (Trace_replay.value_at s 15.0);
  check_float "after end" 3.0 (Trace_replay.value_at s 99.0);
  check_float "duration" 20.0 (Trace_replay.duration s)

let test_series_validation () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Trace_replay.series: times must be strictly increasing")
    (fun () ->
      ignore (Trace_replay.series ~times:[| 1.0; 1.0 |] ~values:[| 0.0; 0.0 |]));
  Alcotest.check_raises "empty" (Invalid_argument "Trace_replay.series: empty")
    (fun () -> ignore (Trace_replay.series ~times:[||] ~values:[||]))

(* --- CSV round-trip --------------------------------------------------------- *)

let sample_traces () =
  let times = [| 0.0; 300.0; 600.0 |] in
  [
    Trace_replay.make_node ~times ~load:[| 0.5; 2.0; 1.0 |]
      ~util_pct:[| 10.0; 30.0; 20.0 |] ~mem_used_gb:[| 4.0; 5.0; 4.5 |]
      ~users:[| 1.0; 2.0; 1.0 |];
    Trace_replay.make_node ~times ~load:[| 0.1; 0.2; 0.3 |]
      ~util_pct:[| 5.0; 6.0; 7.0 |] ~mem_used_gb:[| 3.0; 3.0; 3.0 |]
      ~users:[| 0.0; 0.0; 1.0 |];
  ]

let test_csv_roundtrip () =
  let traces = sample_traces () in
  let parsed = Trace_replay.of_csv (Trace_replay.to_csv traces) in
  Alcotest.(check int) "two nodes" 2 (List.length parsed);
  List.iter2
    (fun a b ->
      List.iter
        (fun t ->
          check_float "load" (Trace_replay.value_at a.Trace_replay.load t)
            (Trace_replay.value_at b.Trace_replay.load t);
          check_float "util" (Trace_replay.value_at a.Trace_replay.util_pct t)
            (Trace_replay.value_at b.Trace_replay.util_pct t))
        [ 0.0; 300.0; 600.0 ])
    traces parsed

let test_csv_rejects_garbage () =
  Alcotest.(check bool) "bad header" true
    (try ignore (Trace_replay.of_csv "nope\n1,2,3"); false
     with Failure _ -> true);
  Alcotest.(check bool) "bad row" true
    (try
       ignore
         (Trace_replay.of_csv
            "time_s,node,load,util_pct,mem_used_gb,users\n1,2,3");
       false
     with Failure _ -> true)

(* --- record / replay round-trip ----------------------------------------------- *)

let test_record_replay_roundtrip () =
  let live = World.create ~cluster:(cluster ()) ~scenario:Scenario.normal ~seed:99 in
  let traces = World.record_traces live ~hours:1.0 ~period_s:300.0 in
  Alcotest.(check int) "one trace per node" 4 (List.length traces);
  (* Record the live values at the sample points... *)
  let replay = World.create_replay ~cluster:(cluster ()) ~traces ~seed:1 () in
  List.iter
    (fun t ->
      World.advance replay ~now:t;
      for node = 0 to 3 do
        let tr = List.nth traces node in
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "load node %d at %.0f" node t)
          (Trace_replay.value_at tr.Trace_replay.load t)
          (World.cpu_load replay ~node)
      done)
    [ 0.0; 300.0; 1500.0; 3600.0 ]

let test_replay_world_usable_by_allocator () =
  let live = World.create ~cluster:(cluster ()) ~scenario:Scenario.busy ~seed:5 in
  let traces = World.record_traces live ~hours:0.5 ~period_s:300.0 in
  let replay = World.create_replay ~cluster:(cluster ()) ~traces ~seed:2 () in
  World.advance replay ~now:900.0;
  let snap = Rm_monitor.Snapshot.of_truth ~time:900.0 ~world:replay in
  match
    Rm_core.Policies.allocate ~policy:Rm_core.Policies.Network_load_aware
      ~snapshot:snap ~weights:Rm_core.Weights.paper_default
      ~request:(Rm_core.Request.make ~ppn:4 ~procs:8 ())
      ~rng:(Rm_stats.Rng.create 1) ()
  with
  | Ok a -> Alcotest.(check int) "covers" 8 (Allocation.total_procs a)
  | Error _ -> Alcotest.fail "allocation failed on replay world"

let test_replay_trace_count_mismatch () =
  let traces = sample_traces () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "World.create_replay: one trace per node required")
    (fun () ->
      ignore (World.create_replay ~cluster:(cluster ()) ~traces ~seed:1 ()))

(* --- Hostfile -------------------------------------------------------------------- *)

let allocation () =
  Allocation.make ~policy:"x"
    ~entries:[ { Allocation.node = 2; procs = 4 }; { Allocation.node = 0; procs = 2 } ]

let test_machinefile () =
  let c = cluster () in
  Alcotest.(check string) "machinefile" "node3 slots=4\nnode1 slots=2\n"
    (Hostfile.machinefile ~allocation:(allocation ()) ~cluster:c)

let test_hydra_hosts () =
  let c = cluster () in
  Alcotest.(check string) "hosts" "node3:4,node1:2"
    (Hostfile.hydra_hosts ~allocation:(allocation ()) ~cluster:c)

let test_mpirun_command () =
  let c = cluster () in
  Alcotest.(check string) "command"
    "mpiexec -np 6 -hosts node3:4,node1:2 ./miniMD"
    (Hostfile.mpirun_command ~allocation:(allocation ()) ~cluster:c
       ~program:"./miniMD")

let test_hostfile_bad_node () =
  let c = cluster () in
  let a =
    Allocation.make ~policy:"x" ~entries:[ { Allocation.node = 99; procs = 1 } ]
  in
  Alcotest.check_raises "bad node"
    (Invalid_argument "Hostfile: node not in cluster") (fun () ->
      ignore (Hostfile.machinefile ~allocation:a ~cluster:c))

let suites =
  [
    ( "workload.trace_replay",
      [
        Alcotest.test_case "step lookup" `Quick test_series_step_lookup;
        Alcotest.test_case "validation" `Quick test_series_validation;
        Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
        Alcotest.test_case "csv rejects garbage" `Quick test_csv_rejects_garbage;
        Alcotest.test_case "record/replay roundtrip" `Quick
          test_record_replay_roundtrip;
        Alcotest.test_case "allocator on replay world" `Quick
          test_replay_world_usable_by_allocator;
        Alcotest.test_case "trace count mismatch" `Quick
          test_replay_trace_count_mismatch;
      ] );
    ( "core.hostfile",
      [
        Alcotest.test_case "machinefile" `Quick test_machinefile;
        Alcotest.test_case "hydra hosts" `Quick test_hydra_hosts;
        Alcotest.test_case "mpirun command" `Quick test_mpirun_command;
        Alcotest.test_case "bad node" `Quick test_hostfile_bad_node;
      ] );
  ]

(* Tests for rm_sched plus the world job overlay, the executor's pure
   estimator, the profiler and the hierarchical allocator. *)

module Sim = Rm_engine.Sim
module Rng = Rm_stats.Rng
module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module System = Rm_monitor.System
module Snapshot = Rm_monitor.Snapshot
module Allocation = Rm_core.Allocation
module Request = Rm_core.Request
module Weights = Rm_core.Weights
module Broker = Rm_core.Broker
module Hierarchical = Rm_core.Hierarchical
module Compute_load = Rm_core.Compute_load
module Executor = Rm_mpisim.Executor
module Profiler = Rm_mpisim.Profiler
module App = Rm_mpisim.App
module Scheduler = Rm_sched.Scheduler
module Flow = Rm_netsim.Flow

let cluster () = Cluster.homogeneous ~cores:8 ~freq_ghz:3.0 ~nodes_per_switch:[ 4; 4 ] ()

let quiet_world ?(seed = 1) () =
  World.create ~cluster:(cluster ()) ~scenario:Scenario.quiet ~seed

let alloc entries =
  Allocation.make ~policy:"test"
    ~entries:(List.map (fun (node, procs) -> { Allocation.node; procs }) entries)

let ring_app ~ranks ~iterations =
  App.make ~name:"ring" ~ranks ~iterations
    ~phase:(fun ~iter:_ ->
      {
        App.flops_per_rank = (fun _ -> 1e6);
        messages = List.init ranks (fun r -> (r, (r + 1) mod ranks, 1e4));
        allreduce_bytes = 8.0;
      })
    ()

(* --- World job overlay ------------------------------------------------------ *)

let test_world_job_overlay_load () =
  let w = quiet_world () in
  let before = World.cpu_load w ~node:2 in
  let h = World.register_job w ~load:[ (2, 4.0); (3, 4.0) ] ~flows:[] in
  Alcotest.(check (float 1e-9)) "load raised" (before +. 4.0)
    (World.cpu_load w ~node:2);
  Alcotest.(check int) "one job" 1 (World.job_count w);
  World.release_job w h;
  Alcotest.(check (float 1e-9)) "load restored" before (World.cpu_load w ~node:2);
  Alcotest.(check int) "no jobs" 0 (World.job_count w)

let test_world_job_overlay_flows () =
  let w = quiet_world () in
  let net = World.network w in
  let bw_before = Rm_netsim.Network.available_bandwidth_mb_s net ~src:0 ~dst:5 in
  let h =
    World.register_job w ~load:[]
      ~flows:[ (0, Flow.Node 5, 200.0) ]
  in
  let bw_during = Rm_netsim.Network.available_bandwidth_mb_s net ~src:1 ~dst:6 in
  Alcotest.(check bool) "cross traffic visible" true (bw_during < bw_before);
  World.release_job w h;
  let bw_after = Rm_netsim.Network.available_bandwidth_mb_s net ~src:1 ~dst:6 in
  Alcotest.(check bool) "restored" true (bw_after > bw_during)

let test_world_job_release_idempotent () =
  let w = quiet_world () in
  let h = World.register_job w ~load:[ (0, 1.0) ] ~flows:[] in
  World.release_job w h;
  World.release_job w h;
  Alcotest.(check int) "still zero" 0 (World.job_count w)

let test_world_job_survives_advance () =
  let w = quiet_world () in
  ignore (World.register_job w ~load:[ (1, 2.0) ] ~flows:[]);
  World.advance w ~now:600.0;
  Alcotest.(check bool) "overlay persists" true (World.cpu_load w ~node:1 >= 2.0)

(* --- Executor estimator / pair rates ------------------------------------------ *)

let test_estimate_close_to_run () =
  (* On a quiet cluster conditions barely change, so the estimate should
     land near the executed duration. *)
  let w = quiet_world () in
  let allocation = alloc [ (0, 2); (1, 2) ] in
  let app = ring_app ~ranks:4 ~iterations:50 in
  let est = Executor.estimate_duration_s ~world:w ~allocation ~app () in
  let real = (Executor.run ~world:w ~allocation ~app ()).Executor.total_time_s in
  Alcotest.(check bool) "within 50%" true
    (est > 0.5 *. real && est < 2.0 *. real)

let test_estimate_pure () =
  let w = quiet_world () in
  let allocation = alloc [ (0, 2); (1, 2) ] in
  let app = ring_app ~ranks:4 ~iterations:50 in
  let t0 = World.now w in
  ignore (Executor.estimate_duration_s ~world:w ~allocation ~app ());
  Alcotest.(check (float 1e-12)) "world untouched" t0 (World.now w)

let test_pair_rates_structure () =
  let allocation = alloc [ (0, 2); (1, 2) ] in
  let app = ring_app ~ranks:4 ~iterations:50 in
  let rates = Executor.mean_pair_rates_mb_s ~allocation ~app ~duration_s:10.0 in
  Alcotest.(check int) "one inter-node pair" 1 (List.length rates);
  let (u, v), r = List.hd rates in
  Alcotest.(check (pair int int)) "the pair" (0, 1) (u, v);
  (* ring over 2 nodes: ranks 1->2 and 3->0 cross, 1e4 bytes each,
     50 iterations over 10 s = 100 kB/s. *)
  Alcotest.(check (float 1e-6)) "rate" (2.0 *. 1e4 *. 50.0 /. 10.0 /. 1e6) r

(* --- Profiler -------------------------------------------------------------------- *)

let test_profiler_fractions_sum () =
  let w = quiet_world () in
  let allocation = alloc [ (0, 2); (1, 2) ] in
  let p = Profiler.profile ~world:w ~allocation ~app:(ring_app ~ranks:4 ~iterations:50) () in
  Alcotest.(check (float 1e-9)) "fractions sum to 1" 1.0
    (p.Profiler.compute_fraction +. p.Profiler.comm_fraction);
  Alcotest.(check bool) "alpha in range" true
    (p.Profiler.suggested_alpha >= 0.1 && p.Profiler.suggested_alpha <= 0.9)

let test_profiler_orders_apps () =
  let w = quiet_world () in
  let allocation = alloc [ (0, 4); (1, 4) ] in
  let md =
    Profiler.profile ~world:w ~allocation
      ~app:(Rm_apps.Minimd.app ~config:(Rm_apps.Minimd.default_config ~s:16) ~ranks:8)
      ()
  in
  let fe =
    Profiler.profile ~world:w ~allocation
      ~app:(Rm_apps.Minife.app ~config:(Rm_apps.Minife.default_config ~nx:144) ~ranks:8)
      ()
  in
  Alcotest.(check bool) "miniMD more comm-bound" true
    (md.Profiler.comm_fraction > fe.Profiler.comm_fraction);
  Alcotest.(check bool) "so miniMD gets lower alpha" true
    (md.Profiler.suggested_alpha < fe.Profiler.suggested_alpha)

let test_profiler_weights_for () =
  let w = quiet_world () in
  let allocation = alloc [ (0, 2); (1, 2) ] in
  let p = Profiler.profile ~world:w ~allocation ~app:(ring_app ~ranks:4 ~iterations:20) () in
  let weights = Profiler.weights_for p ~base:Weights.paper_default in
  Weights.validate weights;
  Alcotest.(check (float 1e-9)) "w_lt copied" p.Profiler.suggested_w_lt
    weights.Weights.w_lt

(* --- Hierarchical ------------------------------------------------------------------ *)

let truth_snapshot world = Snapshot.of_truth ~time:(World.now world) ~world

let test_hierarchical_groups () =
  let w = quiet_world () in
  World.advance w ~now:600.0;
  let snap = truth_snapshot w in
  let loads = Compute_load.of_snapshot snap ~weights:Weights.paper_default in
  let groups = Hierarchical.groups ~snapshot:snap ~loads ~capacity:(fun _ -> 4) in
  Alcotest.(check int) "two switches" 2 (List.length groups);
  List.iter
    (fun (g : Hierarchical.group) ->
      Alcotest.(check int) "4 members" 4 (List.length g.Hierarchical.members);
      Alcotest.(check int) "capacity" 16 g.Hierarchical.capacity)
    groups

let test_hierarchical_allocates () =
  let w = quiet_world () in
  World.advance w ~now:600.0;
  let snap = truth_snapshot w in
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:12 () in
  match Hierarchical.allocate ~snapshot:snap ~weights:Weights.paper_default ~request () with
  | Ok a ->
    Alcotest.(check int) "covers request" 12 (Allocation.total_procs a);
    Alcotest.(check string) "labelled" "hierarchical" a.Allocation.policy
  | Error _ -> Alcotest.fail "hierarchical failed"

let test_hierarchical_prefers_quiet_switch () =
  (* Load every node of switch 0 heavily via the overlay; a 2-node job
     must land on switch 1. *)
  let w = quiet_world () in
  ignore
    (World.register_job w
       ~load:(List.init 4 (fun i -> (i, 7.0)))
       ~flows:[ (0, Flow.Node 1, 90.0); (2, Flow.Node 3, 90.0) ]);
  World.advance w ~now:600.0;
  let snap = truth_snapshot w in
  let request = Request.make ~ppn:4 ~alpha:0.5 ~procs:8 () in
  match Hierarchical.allocate ~snapshot:snap ~weights:Weights.paper_default ~request () with
  | Ok a ->
    List.iter
      (fun n -> Alcotest.(check bool) "on switch 1" true (n >= 4))
      (Allocation.node_ids a)
  | Error _ -> Alcotest.fail "hierarchical failed"

let test_hierarchical_matches_flat_scale () =
  (* Node count covered and no duplicates, on the 60-node reference. *)
  let w =
    World.create ~cluster:(Cluster.iitk_reference ()) ~scenario:Scenario.normal
      ~seed:9
  in
  World.advance w ~now:3600.0;
  let snap = truth_snapshot w in
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:32 () in
  match Hierarchical.allocate ~snapshot:snap ~weights:Weights.paper_default ~request () with
  | Ok a ->
    Alcotest.(check int) "32 procs" 32 (Allocation.total_procs a);
    let nodes = Allocation.node_ids a in
    Alcotest.(check int) "distinct nodes" (List.length nodes)
      (List.length (List.sort_uniq compare nodes))
  | Error _ -> Alcotest.fail "hierarchical failed"

(* --- Multi-site allocation (§6 federation) ----------------------------------- *)

let test_federated_allocator_avoids_wan () =
  let cluster =
    Cluster.federated ~cores:8 ~sites:[ ("a", [ 4 ]); ("b", [ 4 ]) ] ()
  in
  let world = World.create ~cluster ~scenario:Scenario.quiet ~seed:8 in
  World.advance world ~now:600.0;
  let snap = Snapshot.of_truth ~time:600.0 ~world in
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:12 () in
  match
    Rm_core.Policies.allocate ~policy:Rm_core.Policies.Network_load_aware
      ~snapshot:snap ~weights:Weights.paper_default ~request
      ~rng:(Rm_stats.Rng.create 2) ()
  with
  | Ok a ->
    let topo = Cluster.topology cluster in
    let sites =
      List.sort_uniq compare
        (List.map
           (Rm_cluster.Topology.site_of_node topo)
           (Allocation.node_ids a))
    in
    Alcotest.(check int) "single site" 1 (List.length sites)
  | Error _ -> Alcotest.fail "allocation failed"

let test_federated_executor_pays_wan () =
  let cluster =
    Cluster.federated ~cores:8 ~sites:[ ("a", [ 4 ]); ("b", [ 4 ]) ] ()
  in
  let run entries =
    let world = World.create ~cluster ~scenario:Scenario.quiet ~seed:5 in
    let app = ring_app ~ranks:8 ~iterations:50 in
    (Executor.run ~world ~allocation:(alloc entries) ~app ())
      .Executor.total_time_s
  in
  let same_site = run [ (0, 4); (1, 4) ] in
  let cross_site = run [ (0, 4); (4, 4) ] in
  Alcotest.(check bool) "WAN placement slower" true
    (cross_site > 2.0 *. same_site)

let qcheck = QCheck_alcotest.to_alcotest

let prop_hierarchical_covers =
  QCheck.Test.make ~name:"hierarchical covers any request size" ~count:30
    QCheck.(int_range 1 40)
    (fun procs ->
      let w = quiet_world ~seed:(procs + 100) () in
      World.advance w ~now:600.0;
      let snap = Snapshot.of_truth ~time:600.0 ~world:w in
      match
        Hierarchical.allocate ~snapshot:snap ~weights:Weights.paper_default
          ~request:(Request.make ~ppn:4 ~procs ()) ()
      with
      | Ok a -> Allocation.total_procs a = procs
      | Error _ -> false)

(* --- Scheduler -------------------------------------------------------------------- *)

let sched_setup ?(config = Scheduler.default_config) ?(seed = 3) () =
  let sim = Sim.create () in
  let world = World.create ~cluster:(cluster ()) ~scenario:Scenario.quiet ~seed in
  let rng = Rng.create (seed + 10) in
  let horizon = 100_000.0 in
  let monitor = System.start ~sim ~world ~rng ~until:horizon () in
  let sched = Scheduler.create ~sim ~world ~monitor ~config ~rng ~horizon () in
  (sim, world, sched)

let submit_ring ?priority sched ~name ~at ~procs =
  Scheduler.submit sched ~name ~at ?priority
    ~request:(Request.make ~ppn:4 ~alpha:0.5 ~procs ())
    ~app_of:(fun ~ranks -> ring_app ~ranks ~iterations:100)
    ()

let test_scheduler_runs_one_job () =
  let sim, _world, sched = sched_setup () in
  let id = submit_ring sched ~name:"j1" ~at:1000.0 ~procs:8 in
  Sim.run_until sim 5000.0;
  match Scheduler.state sched id with
  | Scheduler.Finished o ->
    Alcotest.(check int) "procs" 8 o.Scheduler.procs;
    Alcotest.(check bool) "started after submit" true
      (o.Scheduler.started_at >= o.Scheduler.submitted_at);
    Alcotest.(check bool) "finished after start" true
      (o.Scheduler.finished_at > o.Scheduler.started_at)
  | _ -> Alcotest.fail "job did not finish"

let test_scheduler_fcfs_order () =
  let sim, _world, sched = sched_setup () in
  let a = submit_ring sched ~name:"a" ~at:1000.0 ~procs:8 in
  let b = submit_ring sched ~name:"b" ~at:1001.0 ~procs:8 in
  Sim.run_until sim 20_000.0;
  match (Scheduler.state sched a, Scheduler.state sched b) with
  | Scheduler.Finished oa, Scheduler.Finished ob ->
    Alcotest.(check bool) "a started first" true
      (oa.Scheduler.started_at <= ob.Scheduler.started_at)
  | _ -> Alcotest.fail "jobs did not finish"

let test_scheduler_dispatch_gap () =
  let sim, _world, sched = sched_setup () in
  let a = submit_ring sched ~name:"a" ~at:1000.0 ~procs:8 in
  let b = submit_ring sched ~name:"b" ~at:1000.0 ~procs:8 in
  Sim.run_until sim 30_000.0;
  match (Scheduler.state sched a, Scheduler.state sched b) with
  | Scheduler.Finished oa, Scheduler.Finished ob ->
    Alcotest.(check bool) "starts separated by the dispatch gap" true
      (Float.abs (ob.Scheduler.started_at -. oa.Scheduler.started_at)
      >= Scheduler.default_config.Scheduler.min_dispatch_gap_s -. 1e-6)
  | _ -> Alcotest.fail "jobs did not finish"

let test_scheduler_running_overlay_visible () =
  let sim, world, sched = sched_setup () in
  (* A long job: 8 nodes x 4 ranks on a 8-node cluster occupies all. *)
  ignore
    (Scheduler.submit sched ~name:"long" ~at:1000.0
       ~request:(Request.make ~ppn:4 ~alpha:0.5 ~procs:32 ())
       ~app_of:(fun ~ranks -> ring_app ~ranks ~iterations:200_000)
       ());
  Sim.run_until sim 1100.0;
  Alcotest.(check int) "job registered in world" 1 (World.job_count world)

let test_scheduler_wait_threshold_queues () =
  let config =
    {
      Scheduler.default_config with
      Scheduler.broker =
        { Broker.default_config with Broker.wait_threshold = Some 0.01 };
    }
  in
  (* Busy background exceeds the threshold; the job must stay queued. *)
  let sim = Sim.create () in
  let world = World.create ~cluster:(cluster ()) ~scenario:Scenario.busy ~seed:4 in
  let rng = Rng.create 14 in
  let monitor = System.start ~sim ~world ~rng ~until:50_000.0 () in
  let sched = Scheduler.create ~sim ~world ~monitor ~config ~rng ~horizon:50_000.0 () in
  let id = submit_ring sched ~name:"q" ~at:1000.0 ~procs:8 in
  Sim.run_until sim 10_000.0;
  Alcotest.(check bool) "still queued" true (Scheduler.state sched id = Scheduler.Queued)

let test_scheduler_summary () =
  let sim, _world, sched = sched_setup () in
  ignore (submit_ring sched ~name:"a" ~at:1000.0 ~procs:8);
  ignore (submit_ring sched ~name:"b" ~at:1100.0 ~procs:8);
  Sim.run_until sim 30_000.0;
  let s = Scheduler.summary sched in
  Alcotest.(check int) "two finished" 2 s.Scheduler.jobs_finished;
  Alcotest.(check bool) "waits sane" true
    (s.Scheduler.mean_wait_s >= 0.0 && s.Scheduler.max_wait_s >= s.Scheduler.mean_wait_s);
  Alcotest.(check bool) "turnaround >= wait" true
    (s.Scheduler.mean_turnaround_s >= s.Scheduler.mean_wait_s)

let test_scheduler_priority_order () =
  (* A first job consumes the dispatch slot; two more land inside the
     dispatch gap. When the gap expires, the high-priority one must be
     examined (and start) before the earlier-submitted low one. *)
  let sim, _world, sched = sched_setup () in
  ignore (submit_ring sched ~name:"first" ~at:1000.0 ~procs:8);
  let low = submit_ring sched ~name:"low" ~at:1001.0 ~procs:8 in
  let high = submit_ring ~priority:10 sched ~name:"high" ~at:1002.0 ~procs:8 in
  Sim.run_until sim 60_000.0;
  match (Scheduler.state sched low, Scheduler.state sched high) with
  | Scheduler.Finished ol, Scheduler.Finished oh ->
    Alcotest.(check bool) "high starts before low" true
      (oh.Scheduler.started_at < ol.Scheduler.started_at)
  | _ -> Alcotest.fail "jobs did not finish"

let test_scheduler_cancel_queued () =
  let config =
    {
      Scheduler.default_config with
      Scheduler.broker =
        { Rm_core.Broker.default_config with Rm_core.Broker.wait_threshold = Some 0.0001 };
    }
  in
  let sim, _world, sched = sched_setup ~config () in
  let id = submit_ring sched ~name:"stuck" ~at:1000.0 ~procs:8 in
  Sim.run_until sim 2000.0;
  Alcotest.(check bool) "queued" true (Scheduler.state sched id = Scheduler.Queued);
  Scheduler.cancel sched id;
  Alcotest.(check bool) "cancelled" true
    (Scheduler.state sched id = Scheduler.Rejected "cancelled");
  Scheduler.cancel sched id (* idempotent *)

let test_scheduler_cancel_running_releases_overlay () =
  let sim, world, sched = sched_setup () in
  let id =
    Scheduler.submit sched ~name:"long" ~at:1000.0
      ~request:(Request.make ~ppn:4 ~alpha:0.5 ~procs:32 ())
      ~app_of:(fun ~ranks -> ring_app ~ranks ~iterations:200_000)
      ()
  in
  Sim.run_until sim 1100.0;
  Alcotest.(check int) "overlay present" 1 (World.job_count world);
  Scheduler.cancel sched id;
  Alcotest.(check int) "overlay released" 0 (World.job_count world);
  Sim.run_until sim 50_000.0;
  Alcotest.(check bool) "never finishes" true
    (Scheduler.state sched id = Scheduler.Rejected "cancelled");
  Alcotest.(check int) "no outcome recorded" 0
    (List.length (Scheduler.finished sched))

let test_scheduler_exclusive_serializes () =
  (* An 8-node cluster; two 32-proc jobs each need all 8 nodes under
     exclusive mode, so the second cannot overlap the first. *)
  let config = { Scheduler.default_config with Scheduler.exclusive = true } in
  let sim, _world, sched = sched_setup ~config () in
  let submit name at =
    Scheduler.submit sched ~name ~at
      ~request:(Request.make ~ppn:4 ~alpha:0.5 ~procs:32 ())
      ~app_of:(fun ~ranks -> ring_app ~ranks ~iterations:2000)
      ()
  in
  let a = submit "a" 1000.0 in
  let b = submit "b" 1000.0 in
  Sim.run_until sim 80_000.0;
  match (Scheduler.state sched a, Scheduler.state sched b) with
  | Scheduler.Finished oa, Scheduler.Finished ob ->
    let first, second =
      if oa.Scheduler.started_at <= ob.Scheduler.started_at then (oa, ob)
      else (ob, oa)
    in
    Alcotest.(check bool) "no overlap" true
      (second.Scheduler.started_at >= first.Scheduler.finished_at -. 1e-6)
  | _ -> Alcotest.fail "jobs did not finish"

let test_snapshot_restrict () =
  let w = World.create ~cluster:(cluster ()) ~scenario:Scenario.quiet ~seed:2 in
  World.advance w ~now:60.0;
  let snap = Snapshot.of_truth ~time:60.0 ~world:w in
  let restricted = Snapshot.restrict snap ~exclude:[ 0; 5 ] in
  Alcotest.(check int) "six usable" 6
    (List.length (Snapshot.usable restricted));
  Alcotest.(check bool) "0 gone" false (List.mem 0 (Snapshot.usable restricted));
  Alcotest.(check int) "original untouched" 8
    (List.length (Snapshot.usable snap))

let test_scheduler_timeline () =
  let sim, _world, sched = sched_setup () in
  Alcotest.(check string) "empty before finishes" ""
    (Scheduler.render_timeline sched ());
  ignore (submit_ring sched ~name:"alpha" ~at:1000.0 ~procs:8);
  ignore (submit_ring sched ~name:"beta" ~at:1200.0 ~procs:8);
  Sim.run_until sim 30_000.0;
  let timeline = Scheduler.render_timeline sched ~width:40 () in
  Alcotest.(check bool) "mentions both jobs" true
    (let has needle =
       let rec go i =
         i + String.length needle <= String.length timeline
         && (String.sub timeline i (String.length needle) = needle || go (i + 1))
       in
       go 0
     in
     has "alpha" && has "beta");
  Alcotest.(check bool) "has running marks" true
    (String.exists (fun c -> c = '#') timeline)

(* --- Failure detection and requeue -------------------------------------- *)

let test_scheduler_requeues_after_node_death () =
  let config =
    {
      Scheduler.default_config with
      Scheduler.node_check_period_s = Some 5.0;
      backoff_base_s = 20.0;
      restart_overhead_s = 10.0;
    }
  in
  let sim, world, sched = sched_setup ~config () in
  let id =
    Scheduler.submit sched ~name:"victim" ~at:1000.0
      ~request:(Request.make ~ppn:4 ~alpha:0.5 ~procs:8 ())
      ~app_of:(fun ~ranks -> ring_app ~ranks ~iterations:200_000)
      ()
  in
  Sim.run_until sim 1001.0;
  let victim =
    match Scheduler.state sched id with
    | Scheduler.Running { nodes; _ } -> List.hd nodes
    | _ -> Alcotest.fail "job did not start"
  in
  World.set_down world ~node:victim;
  (* The liveness poll (or the completion check, whichever lands first)
     must move the job to Failed within one poll period. *)
  Sim.run_until sim 1010.0;
  (match Scheduler.state sched id with
  | Scheduler.Failed { requeues; reason; _ } ->
    Alcotest.(check int) "first failure" 1 requeues;
    Alcotest.(check bool) "reason names the node" true (reason <> "")
  | _ -> Alcotest.fail "node death not detected");
  Alcotest.(check bool) "listed as failed" true
    (Scheduler.failed sched = [ id ]);
  Alcotest.(check bool) "wasted node-seconds recorded" true
    (Scheduler.wasted_node_seconds sched > 0.0);
  (* Repair the node; after the backoff the job re-enters the queue and
     runs to completion — exactly one Failed -> Queued -> Finished. *)
  World.set_up world ~node:victim;
  Sim.run_until sim 100_000.0;
  (match Scheduler.state sched id with
  | Scheduler.Finished o ->
    Alcotest.(check int) "survived one requeue" 1 o.Scheduler.requeues;
    Alcotest.(check bool) "restarted after the failure" true
      (o.Scheduler.started_at > 1010.0)
  | _ -> Alcotest.fail "job never finished after requeue");
  Alcotest.(check int) "one requeue total" 1 (Scheduler.requeue_count sched);
  (* The requeue is visible in the queue-depth series: depth returns to
     >= 1 at some tick after the failure. *)
  let series = Scheduler.queue_depth_series sched in
  let requeued_visible = ref false in
  Rm_stats.Timeseries.iter series ~f:(fun ~time ~value ->
      if time > 1005.0 && value >= 1.0 then requeued_visible := true);
  Alcotest.(check bool) "requeue visible in queue depth" true !requeued_visible

let test_scheduler_gives_up_after_max_requeues () =
  let config =
    {
      Scheduler.default_config with
      Scheduler.node_check_period_s = Some 5.0;
      max_requeues = 1;
      backoff_base_s = 10.0;
    }
  in
  let sim, world, sched = sched_setup ~config () in
  let id =
    Scheduler.submit sched ~name:"doomed" ~at:1000.0
      ~request:(Request.make ~ppn:4 ~alpha:0.5 ~procs:8 ())
      ~app_of:(fun ~ranks -> ring_app ~ranks ~iterations:200_000)
      ()
  in
  (* Kill whichever nodes the job lands on, every time it starts. *)
  let rec sabotage sim =
    match Scheduler.state sched id with
    | Scheduler.Rejected _ -> ()
    | Scheduler.Running { nodes; _ } ->
      List.iter (fun n -> World.set_down world ~node:n) nodes;
      ignore (Sim.schedule_after sim ~delay:2.0 sabotage)
    | _ -> ignore (Sim.schedule_after sim ~delay:2.0 sabotage)
  in
  ignore (Sim.schedule_after sim ~delay:1001.0 sabotage);
  Sim.run_until sim 100_000.0;
  (match Scheduler.state sched id with
  | Scheduler.Rejected reason ->
    Alcotest.(check bool) "reason mentions giving up" true
      (let needle = "gave up" in
       let h = String.length reason and n = String.length needle in
       let rec go i = i + n <= h && (String.sub reason i n = needle || go (i + 1)) in
       go 0)
  | _ -> Alcotest.fail "job was not rejected");
  Alcotest.(check int) "no outcome recorded" 0
    (List.length (Scheduler.finished sched))

(* Boundary pin: [max_requeues = N] permits exactly N requeues — a job
   that fails N times still finishes on attempt N+1 (the strict [>] in
   the give-up check fires only on failure N+1). A sabotage callback
   kills the job's nodes on its first two runs, then lets it be. *)
let test_scheduler_requeue_boundary () =
  let config =
    {
      Scheduler.default_config with
      Scheduler.node_check_period_s = Some 5.0;
      max_requeues = 2;
      backoff_base_s = 10.0;
    }
  in
  let sim, world, sched = sched_setup ~config () in
  let id =
    Scheduler.submit sched ~name:"boundary" ~at:1000.0
      ~request:(Request.make ~ppn:4 ~alpha:0.5 ~procs:8 ())
      ~app_of:(fun ~ranks -> ring_app ~ranks ~iterations:2000)
      ()
  in
  let kills = ref 0 in
  let rec sabotage sim =
    match Scheduler.state sched id with
    | Scheduler.Running { nodes; _ } when !kills < 2 ->
      incr kills;
      List.iter (fun n -> World.set_down world ~node:n) nodes;
      ignore (Sim.schedule_after sim ~delay:2.0 sabotage)
    | Scheduler.Finished _ | Scheduler.Rejected _ -> ()
    | _ when !kills < 2 -> ignore (Sim.schedule_after sim ~delay:2.0 sabotage)
    | _ -> ()
  in
  ignore (Sim.schedule_after sim ~delay:1001.0 sabotage);
  Sim.run_until sim 200_000.0;
  (match Scheduler.state sched id with
  | Scheduler.Finished o ->
    Alcotest.(check int) "exactly max_requeues requeues" 2
      o.Scheduler.requeues
  | Scheduler.Rejected reason ->
    Alcotest.fail
      ("max_requeues = 2 must permit 2 requeues, but job was rejected: "
      ^ reason)
  | _ -> Alcotest.fail "job neither finished nor rejected");
  Alcotest.(check int) "two requeues total" 2 (Scheduler.requeue_count sched)

let test_scheduler_detection_off_is_historic () =
  (* Default config: no liveness poll, so a node death mid-run does not
     fail the job — the historical (pre-faults) behavior. *)
  let sim, world, sched = sched_setup () in
  let id =
    Scheduler.submit sched ~name:"legacy" ~at:1000.0
      ~request:(Request.make ~ppn:4 ~alpha:0.5 ~procs:8 ())
      ~app_of:(fun ~ranks -> ring_app ~ranks ~iterations:2000)
      ()
  in
  Sim.run_until sim 1001.0;
  (match Scheduler.state sched id with
  | Scheduler.Running { nodes; _ } ->
    List.iter (fun n -> World.set_down world ~node:n) nodes
  | _ -> Alcotest.fail "job did not start");
  Sim.run_until sim 100_000.0;
  (match Scheduler.state sched id with
  | Scheduler.Finished o -> Alcotest.(check int) "no requeues" 0 o.Scheduler.requeues
  | _ -> Alcotest.fail "job should finish when detection is off");
  Alcotest.(check int) "no requeues counted" 0 (Scheduler.requeue_count sched)

let test_scheduler_cancel_failed_job () =
  let config =
    {
      Scheduler.default_config with
      Scheduler.node_check_period_s = Some 5.0;
      backoff_base_s = 500.0;
    }
  in
  let sim, world, sched = sched_setup ~config () in
  let id =
    Scheduler.submit sched ~name:"limbo" ~at:1000.0
      ~request:(Request.make ~ppn:4 ~alpha:0.5 ~procs:8 ())
      ~app_of:(fun ~ranks -> ring_app ~ranks ~iterations:200_000)
      ()
  in
  Sim.run_until sim 1001.0;
  (match Scheduler.state sched id with
  | Scheduler.Running { nodes; _ } -> World.set_down world ~node:(List.hd nodes)
  | _ -> Alcotest.fail "job did not start");
  Sim.run_until sim 1010.0;
  (match Scheduler.state sched id with
  | Scheduler.Failed _ -> ()
  | _ -> Alcotest.fail "not failed");
  Scheduler.cancel sched id;
  Alcotest.(check bool) "cancelled" true
    (Scheduler.state sched id = Scheduler.Rejected "cancelled");
  (* The pending requeue must not resurrect it. *)
  Sim.run_until sim 100_000.0;
  Alcotest.(check bool) "stays cancelled" true
    (Scheduler.state sched id = Scheduler.Rejected "cancelled")

let test_scheduler_submit_past_rejected () =
  let sim, _world, sched = sched_setup () in
  Sim.run_until sim 1000.0;
  Alcotest.check_raises "past"
    (Invalid_argument "Scheduler.submit: time in the past") (fun () ->
      ignore (submit_ring sched ~name:"x" ~at:10.0 ~procs:4))

(* --- Scheduler SLO views ------------------------------------------------ *)

module Slo = Rm_sched.Slo
module Descriptive = Rm_stats.Descriptive
module Timeseries = Rm_stats.Timeseries

(* A histogram estimate can only be off by the width of the bucket the
   rank lands in; check the interpolation against the exact sample
   percentile under that tolerance. *)
let test_slo_percentile_sanity () =
  let samples = Array.init 100 (fun i -> float_of_int i +. 0.5) in
  let bounds = List.init 10 (fun i -> float_of_int ((i + 1) * 10)) in
  let buckets =
    List.map
      (fun ub ->
        ( ub,
          Array.to_list samples
          |> List.filter (fun x -> x <= ub && x > ub -. 10.0)
          |> List.length ))
      bounds
    @ [ (infinity, 0) ]
  in
  List.iter
    (fun p ->
      let exact = Descriptive.percentile samples ~p in
      let estimate = Slo.percentile_of_buckets buckets ~p in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f estimate %.1f within a bucket of exact %.1f" p
           estimate exact)
        true
        (Float.abs (estimate -. exact) <= 10.0))
    [ 50.0; 90.0; 99.0 ]

let test_slo_percentile_edges () =
  (* A rank landing in the overflow bucket clamps to the last finite
     bound — the histogram cannot see past it. *)
  Alcotest.(check (float 1e-9))
    "overflow clamps" 1.0
    (Slo.percentile_of_buckets [ (1.0, 1); (infinity, 9) ] ~p:99.0);
  Alcotest.check_raises "empty histogram"
    (Invalid_argument "Slo.percentile_of_buckets: empty histogram") (fun () ->
      ignore (Slo.percentile_of_buckets [ (1.0, 0); (infinity, 0) ] ~p:50.0));
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Slo.percentile_of_buckets: p out of [0, 100]") (fun () ->
      ignore (Slo.percentile_of_buckets [ (1.0, 1) ] ~p:101.0))

(* Regression: interpolating across a gap of empty buckets. The rank
   crosses in (3, 4] after a (1, 3] stretch with zero counts, so the
   crossing bucket's lower bound is 3.0 (the last non-empty upper
   bound), and the estimate must stay inside [3, 4] — exact values
   pinned, not just containment. *)
let test_slo_percentile_gap_histogram () =
  let buckets = [ (1.0, 10); (2.0, 0); (3.0, 0); (4.0, 5); (infinity, 0) ] in
  (* rank 7.5 inside the first bucket: plain interpolation from 0. *)
  Alcotest.(check (float 1e-9))
    "p50 in first bucket" 0.75
    (Slo.percentile_of_buckets buckets ~p:50.0);
  (* rank 10.5 lands past the empty gap: 3.0 + 1.0 * 0.5/5. *)
  Alcotest.(check (float 1e-9))
    "p70 past the gap" 3.1
    (Slo.percentile_of_buckets buckets ~p:70.0);
  (* rank exactly at the first bucket's cumulative count (p50 of a
     16-sample histogram, rank 8.0 exactly): its upper bound, never a
     value inside the gap. *)
  Alcotest.(check (float 1e-9))
    "rank on the boundary" 1.0
    (Slo.percentile_of_buckets
       [ (1.0, 8); (2.0, 0); (3.0, 0); (4.0, 8); (infinity, 0) ]
       ~p:50.0);
  Alcotest.(check (float 1e-9))
    "p100 is the last bound" 4.0
    (Slo.percentile_of_buckets buckets ~p:100.0);
  (* Sweep: every estimate must sit inside the crossing bucket. *)
  for i = 0 to 1000 do
    let p = 0.1 *. float_of_int i in
    let est = Slo.percentile_of_buckets buckets ~p in
    Alcotest.(check bool)
      (Printf.sprintf "p%.1f=%.4f inside a bucket" p est)
      true
      ((est >= 0.0 && est <= 1.0) || (est >= 3.0 && est <= 4.0))
  done

(* Regression: with telemetry off (or a run where nothing dispatched)
   [report] used to raise Invalid_argument; callers like [rmctl slo]
   crashed. Now it is an [Error] the caller can render as a notice. *)
let test_slo_report_without_wait_data () =
  Rm_telemetry.Runtime.disable ();
  Rm_telemetry.Metrics.reset ();
  let sim, _world, sched = sched_setup () in
  ignore (submit_ring sched ~name:"a" ~at:1000.0 ~procs:8);
  Sim.run_until sim 30_000.0;
  match Slo.report ~sched ~policy:"test" with
  | Error `No_wait_data -> ()
  | Ok _ -> Alcotest.fail "expected Error `No_wait_data with telemetry off"

let test_queue_depth_series_sampled () =
  let sim, _world, sched = sched_setup () in
  ignore (submit_ring sched ~name:"a" ~at:1000.0 ~procs:8);
  ignore (submit_ring sched ~name:"b" ~at:1000.0 ~procs:8);
  Sim.run_until sim 30_000.0;
  let depths = Timeseries.values (Scheduler.queue_depth_series sched) in
  Alcotest.(check bool) "series non-empty" true (Array.length depths > 0);
  (* Two simultaneous submissions with a dispatch gap: the second job
     must have been observed waiting at least once. *)
  Alcotest.(check bool) "depth 1 observed" true
    (Array.exists (fun d -> d >= 1.0) depths);
  Alcotest.(check (float 1e-9)) "drains to zero" 0.0
    depths.(Array.length depths - 1)

let test_slo_report () =
  Rm_telemetry.Runtime.enable ();
  Rm_telemetry.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Rm_telemetry.Runtime.disable ();
      Rm_telemetry.Metrics.reset ())
    (fun () ->
      let sim, _world, sched = sched_setup () in
      ignore (submit_ring sched ~name:"a" ~at:1000.0 ~procs:8);
      ignore (submit_ring sched ~name:"b" ~at:1000.0 ~procs:8);
      Sim.run_until sim 30_000.0;
      let r =
        match Slo.report ~sched ~policy:"test" with
        | Ok r -> r
        | Error `No_wait_data -> Alcotest.fail "expected wait data"
      in
      Alcotest.(check int) "jobs" 2 r.Slo.jobs_finished;
      Alcotest.(check bool) "percentiles ordered" true
        (r.Slo.wait.Slo.p50 <= r.Slo.wait.Slo.p90
        && r.Slo.wait.Slo.p90 <= r.Slo.wait.Slo.p99);
      Alcotest.(check bool) "saw the queue" true (r.Slo.max_queue_depth >= 1);
      let rendered = Slo.render [ r ] in
      Alcotest.(check bool) "render mentions policy" true
        (let hay = rendered and needle = "test" in
         let h = String.length hay and n = String.length needle in
         let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
         go 0))

let suites =
  [
    ( "world.jobs",
      [
        Alcotest.test_case "overlay load" `Quick test_world_job_overlay_load;
        Alcotest.test_case "overlay flows" `Quick test_world_job_overlay_flows;
        Alcotest.test_case "release idempotent" `Quick test_world_job_release_idempotent;
        Alcotest.test_case "survives advance" `Quick test_world_job_survives_advance;
      ] );
    ( "mpisim.estimator",
      [
        Alcotest.test_case "close to executed" `Quick test_estimate_close_to_run;
        Alcotest.test_case "pure" `Quick test_estimate_pure;
        Alcotest.test_case "pair rates" `Quick test_pair_rates_structure;
      ] );
    ( "mpisim.profiler",
      [
        Alcotest.test_case "fractions sum" `Quick test_profiler_fractions_sum;
        Alcotest.test_case "orders apps" `Quick test_profiler_orders_apps;
        Alcotest.test_case "weights_for" `Quick test_profiler_weights_for;
      ] );
    ( "core.hierarchical",
      [
        Alcotest.test_case "groups" `Quick test_hierarchical_groups;
        Alcotest.test_case "allocates" `Quick test_hierarchical_allocates;
        Alcotest.test_case "prefers quiet switch" `Quick
          test_hierarchical_prefers_quiet_switch;
        Alcotest.test_case "reference scale" `Quick test_hierarchical_matches_flat_scale;
      ] );
    ( "core.federation",
      [
        Alcotest.test_case "allocator avoids wan" `Quick
          test_federated_allocator_avoids_wan;
        Alcotest.test_case "executor pays wan" `Quick test_federated_executor_pays_wan;
      ] );
    ( "core.hierarchical.props",
      [ qcheck prop_hierarchical_covers ] );
    ( "sched.slo",
      [
        Alcotest.test_case "percentile sanity vs descriptive" `Quick
          test_slo_percentile_sanity;
        Alcotest.test_case "percentile edge cases" `Quick
          test_slo_percentile_edges;
        Alcotest.test_case "queue depth series sampled" `Quick
          test_queue_depth_series_sampled;
        Alcotest.test_case "full report from a run" `Quick test_slo_report;
        Alcotest.test_case "gap-y histogram interpolation" `Quick
          test_slo_percentile_gap_histogram;
        Alcotest.test_case "report without wait data" `Quick
          test_slo_report_without_wait_data;
      ] );
    ( "sched.scheduler",
      [
        Alcotest.test_case "runs one job" `Quick test_scheduler_runs_one_job;
        Alcotest.test_case "fcfs order" `Quick test_scheduler_fcfs_order;
        Alcotest.test_case "dispatch gap" `Quick test_scheduler_dispatch_gap;
        Alcotest.test_case "overlay visible" `Quick
          test_scheduler_running_overlay_visible;
        Alcotest.test_case "wait threshold queues" `Quick
          test_scheduler_wait_threshold_queues;
        Alcotest.test_case "summary" `Quick test_scheduler_summary;
        Alcotest.test_case "priority order" `Quick test_scheduler_priority_order;
        Alcotest.test_case "cancel queued" `Quick test_scheduler_cancel_queued;
        Alcotest.test_case "cancel running" `Quick
          test_scheduler_cancel_running_releases_overlay;
        Alcotest.test_case "exclusive serializes" `Quick
          test_scheduler_exclusive_serializes;
        Alcotest.test_case "snapshot restrict" `Quick test_snapshot_restrict;
        Alcotest.test_case "timeline" `Quick test_scheduler_timeline;
        Alcotest.test_case "requeues after node death" `Quick
          test_scheduler_requeues_after_node_death;
        Alcotest.test_case "gives up after max requeues" `Quick
          test_scheduler_gives_up_after_max_requeues;
        Alcotest.test_case "requeue boundary: N permits exactly N" `Quick
          test_scheduler_requeue_boundary;
        Alcotest.test_case "detection off is historic" `Quick
          test_scheduler_detection_off_is_historic;
        Alcotest.test_case "cancel failed job" `Quick
          test_scheduler_cancel_failed_job;
        Alcotest.test_case "submit past rejected" `Quick
          test_scheduler_submit_past_rejected;
      ] );
  ]

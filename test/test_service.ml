(* Tests for rm_service: wire codec round-trips (qcheck), decode
   rejection, admission-queue semantics, the batcher determinism
   invariant (a batch served from one snapshot is bit-identical to
   sequential one-shot decides, including Wait and staleness-exclusion
   cases), the daemon end to end over a unix socket, and the Slo
   service report. *)

module Rng = Rm_stats.Rng
module Matrix = Rm_stats.Matrix
module Running_means = Rm_stats.Running_means
module Node = Rm_cluster.Node
module Topology = Rm_cluster.Topology
module Cluster = Rm_cluster.Cluster
module Snapshot = Rm_monitor.Snapshot
module Policies = Rm_core.Policies
module Broker = Rm_core.Broker
module Allocation = Rm_core.Allocation
module Model_cache = Rm_core.Model_cache
module Wire = Rm_service.Wire
module Batcher = Rm_service.Batcher
module Server = Rm_service.Server
module Client = Rm_service.Client
module Slo = Rm_sched.Slo

let qcheck = QCheck_alcotest.to_alcotest

(* --- wire codec --------------------------------------------------------- *)

let policy_gen = QCheck.Gen.oneofl Policies.all

let allocate_gen =
  QCheck.Gen.(
    let* procs = 1 -- 512 in
    let* ppn = opt (1 -- 64) in
    let* alpha = float_bound_inclusive 1.0 in
    let* policy = opt policy_gen in
    let* wait_threshold = opt (float_bound_inclusive 100.0) in
    return { Wire.procs; ppn; alpha; policy; wait_threshold })

let grow_gen =
  QCheck.Gen.(
    let* alloc_id = 0 -- 100_000 in
    let* delta_procs = 1 -- 256 in
    let* grow_ppn = opt (1 -- 64) in
    let* grow_alpha = float_bound_inclusive 1.0 in
    let* grow_policy = opt policy_gen in
    return { Wire.alloc_id; delta_procs; grow_ppn; grow_alpha; grow_policy })

let renegotiate_gen =
  QCheck.Gen.(
    let* ren_alloc_id = 0 -- 100_000 in
    (* Generated as min + slack so the decode invariant
       1 <= min <= pref <= max holds by construction. *)
    let* min_procs = 1 -- 128 in
    let* pref_slack = 0 -- 128 in
    let* max_slack = 0 -- 128 in
    let* ren_ppn = opt (1 -- 64) in
    let* ren_alpha = float_bound_inclusive 1.0 in
    let* ren_policy = opt policy_gen in
    return
      {
        Wire.ren_alloc_id;
        min_procs;
        pref_procs = min_procs + pref_slack;
        max_procs = min_procs + pref_slack + max_slack;
        ren_ppn;
        ren_alpha;
        ren_policy;
      })

let request_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun a -> Wire.Allocate a) allocate_gen;
        map (fun id -> Wire.Release { alloc_id = id }) (0 -- 100_000);
        map (fun g -> Wire.Grow g) grow_gen;
        (let* alloc_id = 0 -- 100_000 in
         let* delta_procs = 1 -- 256 in
         return (Wire.Shrink { alloc_id; delta_procs }));
        map (fun r -> Wire.Renegotiate r) renegotiate_gen;
        return Wire.Status;
        return Wire.Metrics;
      ])

let prop_request_roundtrip =
  QCheck.Test.make ~name:"wire request encode/decode is the identity"
    ~count:200
    (QCheck.make QCheck.Gen.(pair (0 -- 1_000_000) request_gen))
    (fun (req_id, request) ->
      let line = Wire.encode_request { Wire.req_id; request } in
      match Wire.decode_request line with
      | Ok r -> r = { Wire.req_id; request }
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e.Wire.message)

let entries_gen =
  QCheck.Gen.(
    let* n = 1 -- 8 in
    let* base = 0 -- 1000 in
    let* procs = list_size (return n) (1 -- 64) in
    (* Spaced node ids: Allocation.make rejects duplicates. *)
    return (List.mapi (fun i p -> { Allocation.node = base + (3 * i); procs = p }) procs))

let status_gen =
  QCheck.Gen.(
    let* uptime_s = float_bound_inclusive 1e6 in
    let* virtual_time = float_bound_inclusive 1e7 in
    let* active_allocations = 0 -- 1000 in
    let* queue_depth = 0 -- 1000 in
    let* served = 0 -- 1_000_000 in
    let* batches = 0 -- 1_000_000 in
    let* batching = bool in
    let* draining = bool in
    let* cache_hits = 0 -- 1_000_000 in
    let* cache_misses = 0 -- 1_000_000 in
    return
      {
        Wire.daemon_version = Wire.version;
        uptime_s;
        virtual_time;
        active_allocations;
        queue_depth;
        served;
        batches;
        batching;
        draining;
        cache_hits;
        cache_misses;
      })

let response_gen =
  QCheck.Gen.(
    oneof
      [
        (let* alloc_id = 1 -- 100_000 in
         let* entries = entries_gen in
         let* policy = map Policies.name policy_gen in
         return
           (Wire.Allocated
              { alloc_id; allocation = Allocation.make ~policy ~entries }));
        (let* alloc_id = 1 -- 100_000 in
         let* entries = entries_gen in
         let* policy = map Policies.name policy_gen in
         let* moved_procs = 0 -- 512 in
         let* delay_s = float_bound_inclusive 600.0 in
         return
           (Wire.Reconfigured
              {
                alloc_id;
                allocation = Allocation.make ~policy ~entries;
                moved_procs;
                delay_s;
              }));
        (let* after_s = float_bound_inclusive 10.0 in
         let* reason =
           oneof
             [
               return Wire.Queue_full;
               (let* mean_load_per_core = float_bound_inclusive 16.0 in
                let* threshold = float_bound_inclusive 16.0 in
                return (Wire.Overloaded { mean_load_per_core; threshold }));
             ]
         in
         return (Wire.Retry { after_s; reason }));
        map (fun id -> Wire.Released { alloc_id = id }) (1 -- 100_000);
        map (fun s -> Wire.Status_info s) status_gen;
        (* Exposition bodies carry newlines, quotes and backslashes —
           the JSON string escaping must round-trip them. *)
        map (fun s -> Wire.Metrics_text s) (string_size (0 -- 200));
        (let* code =
           oneofl
             [
               Wire.Bad_request; Wire.Unsupported_version; Wire.Shutting_down;
               Wire.Insufficient_capacity; Wire.No_usable_nodes;
               Wire.Unknown_alloc; Wire.Reconfig_rejected;
             ]
         in
         let* message = string_size ~gen:printable (0 -- 80) in
         return (Wire.Error { code; message }));
      ])

let prop_response_roundtrip =
  QCheck.Test.make ~name:"wire response encode/decode is the identity"
    ~count:200
    (QCheck.make QCheck.Gen.(pair (0 -- 1_000_000) response_gen))
    (fun (resp_id, response) ->
      let line = Wire.encode_response { Wire.resp_id; response } in
      match Wire.decode_response line with
      | Ok r -> r = { Wire.resp_id; response }
      | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m)

let decode_err line =
  match Wire.decode_request line with
  | Ok _ -> Alcotest.failf "expected decode error for %s" line
  | Error e -> e

let test_wire_rejects_bad_version () =
  let e = decode_err {|{"v":9,"id":7,"op":"status"}|} in
  Alcotest.(check bool) "code" true (e.Wire.code = Wire.Unsupported_version);
  (* The id is still extracted so the error response can be correlated. *)
  Alcotest.(check (option int)) "id preserved" (Some 7) e.Wire.err_id

let test_wire_v1_gates_v2_ops () =
  (* A v1 envelope still decodes the v1 ops... *)
  (match Wire.decode_request {|{"v":1,"id":1,"op":"allocate","procs":8}|} with
  | Ok { request = Wire.Allocate _; _ } -> ()
  | Ok _ -> Alcotest.fail "expected allocate"
  | Error e -> Alcotest.failf "v1 allocate rejected: %s" e.Wire.message);
  (* ...but the malleability ops require v2, and say so. *)
  List.iter
    (fun line ->
      let e = decode_err line in
      Alcotest.(check bool)
        ("v2-only under v1: " ^ line)
        true
        (e.Wire.code = Wire.Unsupported_version))
    [
      {|{"v":1,"id":2,"op":"grow","alloc":3,"delta":4}|};
      {|{"v":1,"id":3,"op":"shrink","alloc":3,"delta":4}|};
      {|{"v":1,"id":4,"op":"renegotiate","alloc":3,"min":2,"pref":4,"max":8}|};
    ];
  (* Under a v2 envelope the same ops decode. *)
  (match Wire.decode_request {|{"v":2,"id":5,"op":"grow","alloc":3,"delta":4}|} with
  | Ok { request = Wire.Grow { alloc_id = 3; delta_procs = 4; _ }; _ } -> ()
  | Ok _ -> Alcotest.fail "expected grow"
  | Error e -> Alcotest.failf "v2 grow rejected: %s" e.Wire.message);
  match
    Wire.decode_request
      {|{"v":2,"id":6,"op":"renegotiate","alloc":3,"min":2,"pref":4,"max":8}|}
  with
  | Ok { request = Wire.Renegotiate r; _ } ->
    Alcotest.(check int) "min" 2 r.Wire.min_procs;
    Alcotest.(check int) "pref" 4 r.Wire.pref_procs;
    Alcotest.(check int) "max" 8 r.Wire.max_procs
  | Ok _ -> Alcotest.fail "expected renegotiate"
  | Error e -> Alcotest.failf "v2 renegotiate rejected: %s" e.Wire.message

let test_wire_rejects_bad_requests () =
  let bad line =
    let e = decode_err line in
    Alcotest.(check bool) ("bad_request: " ^ line) true
      (e.Wire.code = Wire.Bad_request)
  in
  bad "not json at all";
  bad {|[1,2,3]|};
  bad {|{"id":1,"op":"status"}|};  (* missing version *)
  bad {|{"v":1,"op":"status"}|};  (* missing id *)
  bad {|{"v":1,"id":1,"op":"frobnicate"}|};
  bad {|{"v":1,"id":1,"op":"allocate","procs":0,"policy":"random"}|};
  bad {|{"v":1,"id":1,"op":"allocate","procs":-4,"policy":"random"}|};
  bad {|{"v":1,"id":1,"op":"allocate","procs":8,"ppn":0,"policy":"random"}|};
  bad {|{"v":1,"id":1,"op":"allocate","procs":8,"alpha":1.5,"policy":"random"}|};
  bad {|{"v":1,"id":1,"op":"allocate","procs":8,"alpha":"x","policy":"random"}|};
  bad {|{"v":1,"id":1,"op":"allocate","procs":8,"policy":"no-such-policy"}|};
  bad {|{"v":1,"id":1,"op":"allocate","policy":"random"}|};  (* no procs *)
  bad {|{"v":1,"id":1,"op":"release"}|};  (* no alloc id *)
  bad {|{"v":2,"id":1,"op":"grow","alloc":3}|};  (* no delta *)
  bad {|{"v":2,"id":1,"op":"grow","alloc":3,"delta":0}|};
  bad {|{"v":2,"id":1,"op":"shrink","alloc":3,"delta":-1}|};
  (* renegotiate must satisfy 1 <= min <= pref <= max *)
  bad {|{"v":2,"id":1,"op":"renegotiate","alloc":3,"min":0,"pref":4,"max":8}|};
  bad {|{"v":2,"id":1,"op":"renegotiate","alloc":3,"min":4,"pref":2,"max":8}|};
  bad {|{"v":2,"id":1,"op":"renegotiate","alloc":3,"min":2,"pref":8,"max":4}|}

let test_wire_alpha_defaults () =
  match
    Wire.decode_request {|{"v":1,"id":1,"op":"allocate","procs":8}|}
  with
  | Ok { request = Wire.Allocate a; _ } ->
    Alcotest.(check (float 1e-9)) "alpha" 0.5 a.Wire.alpha;
    Alcotest.(check bool) "ppn" true (a.Wire.ppn = None);
    Alcotest.(check bool) "policy inherits" true (a.Wire.policy = None);
    Alcotest.(check bool) "threshold inherits" true (a.Wire.wait_threshold = None)
  | Ok _ -> Alcotest.fail "expected allocate"
  | Error e -> Alcotest.failf "decode failed: %s" e.Wire.message

(* --- admission queue ---------------------------------------------------- *)

let test_batcher_fifo_and_bounds () =
  let q = Batcher.create ~max_pending:3 in
  Alcotest.(check bool) "accepts 1" true (Batcher.submit q 1 = `Queued);
  Alcotest.(check bool) "accepts 2" true (Batcher.submit q 2 = `Queued);
  Alcotest.(check bool) "accepts 3" true (Batcher.submit q 3 = `Queued);
  Alcotest.(check bool) "backpressure" true (Batcher.submit q 4 = `Queue_full);
  Alcotest.(check int) "depth" 3 (Batcher.depth q);
  Alcotest.(check (list int)) "fifo, capped take" [ 1; 2 ] (Batcher.take q ~max:2);
  Alcotest.(check bool) "freed a slot" true (Batcher.submit q 5 = `Queued);
  Alcotest.(check (list int)) "drains in order" [ 3; 5 ] (Batcher.take q ~max:10)

let test_batcher_close_semantics () =
  let q = Batcher.create ~max_pending:8 in
  ignore (Batcher.submit q "a");
  ignore (Batcher.submit q "b");
  Batcher.close q;
  Alcotest.(check bool) "closed to producers" true
    (Batcher.submit q "c" = `Closed);
  Alcotest.(check (list string)) "drains the backlog" [ "a"; "b" ]
    (Batcher.take q ~max:10);
  (* Closed and empty: [] immediately, no blocking — the consumer's
     stop signal. *)
  Alcotest.(check (list string)) "then empty forever" [] (Batcher.take q ~max:10);
  Alcotest.(check bool) "reports closed" true (Batcher.is_closed q)

(* --- batcher determinism ------------------------------------------------- *)

let flat v : Running_means.view = { instant = v; m1 = v; m5 = v; m15 = v }

(* Six 8-core nodes on two switches with mixed load and per-node
   freshness: [written_at] ages make nodes 0 and 3 stale under a 30 s
   gate when the snapshot is taken at t=100. *)
let service_fixture () =
  let n = 6 in
  let node_switch = [| 0; 0; 0; 1; 1; 1 |] in
  let topology = Topology.create ~node_switch ~switches:2 () in
  let nodes =
    List.init n (fun i ->
        Node.make ~id:i
          ~hostname:(Printf.sprintf "n%d" i)
          ~cores:8 ~freq_ghz:3.0 ~mem_gb:16.0 ~switch:node_switch.(i))
  in
  let cluster = Cluster.make ~nodes ~topology in
  let loads = [| 0.5; 2.0; 1.0; 0.2; 3.0; 0.8 |] in
  let infos =
    Array.init n (fun i ->
        Some
          {
            Snapshot.static = Cluster.node cluster i;
            users = 1;
            load = flat loads.(i);
            util_pct = flat 20.0;
            nic_mb_s = flat 1.0;
            mem_avail_gb = flat 12.0;
            written_at = (if i mod 3 = 0 then 0.0 else 95.0);
          })
  in
  let mk init diagonal =
    let m = Matrix.square n ~init in
    for i = 0 to n - 1 do
      Matrix.set m i i diagonal
    done;
    m
  in
  {
    Snapshot.time = 100.0;
    cluster;
    live = List.init n (fun i -> i);
    nodes = infos;
    bw_mb_s = mk 110.0 infinity;
    peak_bw_mb_s = mk 118.0 infinity;
    lat_us = mk 70.0 0.0;
  }

let small_allocate_gen =
  QCheck.Gen.(
    let* procs = 1 -- 24 in
    let* ppn = opt (1 -- 8) in
    let* alpha = float_bound_inclusive 1.0 in
    let* policy = opt policy_gen in
    (* Mix inherit / never-wait / always-wait so both decision branches
       appear in batches: mean load per core is > 0 on the fixture, so
       a -1 threshold forces Wait and a 100 threshold never fires. *)
    let* wait_threshold = oneofl [ None; Some 100.0; Some (-1.0) ] in
    return { Wire.procs; ppn; alpha; policy; wait_threshold })

let batch_gen =
  QCheck.Gen.(
    let* seed = 0 -- 1_000_000 in
    let* staleness = oneofl [ infinity; 30.0 ] in
    let* params = list_size (1 -- 16) small_allocate_gen in
    return (seed, staleness, params))

(* The service's core invariant: serving a batch from one snapshot is
   bit-identical to N sequential one-shot Broker.decide calls on that
   snapshot — same decisions, same rng consumption — even though the
   sequential side rebuilds its models from scratch each call (cleared
   cache) while the batch reuses one Model_cache entry. Covers Wait
   (forced thresholds) and max_staleness_s exclusion. *)
let prop_batch_equals_sequential =
  QCheck.Test.make
    ~name:"serve_batch ≡ sequential one-shot decides (incl. Wait, staleness)"
    ~count:60 (QCheck.make batch_gen)
    (fun (seed, staleness, params) ->
      let snapshot = service_fixture () in
      let base = { Broker.default_config with max_staleness_s = staleness } in
      Model_cache.clear ();
      let batched =
        Batcher.serve_batch ~base ~snapshot ~rng:(Rng.create seed) params
      in
      let rng = Rng.create seed in
      let sequential =
        List.map
          (fun a ->
            Model_cache.clear ();
            Broker.decide
              ~config:(Batcher.broker_config ~base a)
              ~snapshot
              ~request:(Batcher.request_of a)
              ~rng)
          params
      in
      Model_cache.clear ();
      batched = sequential)

let test_batch_covers_both_decisions () =
  (* Not just "they agree": check the fixture really produces both
     Allocated and Wait outcomes, so the property above is not
     vacuously comparing one branch. *)
  let snapshot = service_fixture () in
  let base = Broker.default_config in
  let mk wait_threshold =
    {
      Wire.procs = 8;
      ppn = Some 4;
      alpha = 0.5;
      policy = Some Policies.Network_load_aware;
      wait_threshold;
    }
  in
  let outcomes =
    Batcher.serve_batch ~base ~snapshot ~rng:(Rng.create 1)
      [ mk None; mk (Some (-1.0)) ]
  in
  (match outcomes with
  | [ Ok (Broker.Allocated _); Ok (Broker.Wait _) ] -> ()
  | _ -> Alcotest.fail "expected [Allocated; Wait]");
  Model_cache.clear ()

let test_staleness_exclusion_in_batch () =
  let snapshot = service_fixture () in
  let base = { Broker.default_config with max_staleness_s = 30.0 } in
  let a =
    {
      Wire.procs = 8;
      ppn = Some 4;
      alpha = 0.5;
      policy = Some Policies.Network_load_aware;
      wait_threshold = None;
    }
  in
  (match Batcher.serve_batch ~base ~snapshot ~rng:(Rng.create 2) [ a ] with
  | [ Ok (Broker.Allocated alloc) ] ->
    (* Nodes 0 and 3 are stale (written_at 0.0, snapshot t=100, gate
       30s) and must never be chosen. *)
    List.iter
      (fun node ->
        Alcotest.(check bool)
          (Printf.sprintf "node %d not stale" node)
          true
          (node <> 0 && node <> 3))
      (Allocation.node_ids alloc)
  | _ -> Alcotest.fail "expected one allocation");
  Model_cache.clear ()

(* --- server end to end --------------------------------------------------- *)

let with_server ?(batching = true) ?(broker = Broker.default_config)
    ?metrics_out f =
  let path =
    Printf.sprintf "/tmp/rm-svc-test-%d-%s.sock" (Unix.getpid ())
      (if batching then "b" else "c")
  in
  let config =
    {
      (Server.default_config ~endpoint:(Server.Unix_socket path)) with
      nodes = Some 12;
      tick_s = 0.005;
      batching;
      broker;
      metrics_out;
    }
  in
  let was_enabled = Rm_telemetry.Runtime.is_enabled () in
  Rm_telemetry.Runtime.enable ();
  let server = Server.create config in
  Server.start server;
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Model_cache.clear ();
      if not was_enabled then Rm_telemetry.Runtime.disable ())
    (fun () -> f ~path ~server)

let test_server_allocate_release () =
  with_server @@ fun ~path ~server:_ ->
  let c = Client.connect (`Unix path) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let alloc_id =
    match Client.allocate c ~ppn:4 ~procs:16 with
    | Wire.Allocated { alloc_id; allocation } ->
      Alcotest.(check int) "all procs placed" 16
        (Allocation.total_procs allocation);
      Alcotest.(check string) "policy" "network-load-aware"
        allocation.Allocation.policy;
      alloc_id
    | r -> Alcotest.failf "expected allocation, got %a" Wire.pp_response r
  in
  (match Client.status c with
  | Wire.Status_info s ->
    Alcotest.(check int) "one active" 1 s.Wire.active_allocations;
    Alcotest.(check bool) "served some" true (s.Wire.served >= 1);
    Alcotest.(check bool) "batching on" true s.Wire.batching;
    Alcotest.(check bool) "not draining" true (not s.Wire.draining)
  | r -> Alcotest.failf "expected status, got %a" Wire.pp_response r);
  (match Client.release c ~alloc_id with
  | Wire.Released { alloc_id = id } -> Alcotest.(check int) "same id" alloc_id id
  | r -> Alcotest.failf "expected released, got %a" Wire.pp_response r);
  match Client.release c ~alloc_id with
  | Wire.Error { code = Wire.Unknown_alloc; _ } -> ()
  | r -> Alcotest.failf "expected unknown_alloc, got %a" Wire.pp_response r

let test_server_grow_shrink_renegotiate () =
  with_server @@ fun ~path ~server:_ ->
  let c = Client.connect (`Unix path) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let alloc_id, nodes0 =
    match Client.allocate c ~ppn:4 ~procs:16 with
    | Wire.Allocated { alloc_id; allocation } ->
      (alloc_id, Allocation.node_ids allocation)
    | r -> Alcotest.failf "expected allocation, got %a" Wire.pp_response r
  in
  (* Grow adds procs on fresh nodes: the original placement is kept,
     and the delta ranks must receive redistributed data, which costs a
     modeled delay. *)
  (match Client.grow c ~ppn:4 ~alloc_id ~delta_procs:8 with
  | Wire.Reconfigured { alloc_id = id; allocation; moved_procs; delay_s } ->
    Alcotest.(check int) "same id" alloc_id id;
    Alcotest.(check int) "grown total" 24 (Allocation.total_procs allocation);
    Alcotest.(check int) "delta ranks receive data" 8 moved_procs;
    Alcotest.(check bool) "original nodes kept" true
      (List.for_all
         (fun n -> List.mem n (Allocation.node_ids allocation))
         nodes0);
    Alcotest.(check bool) "positive delay" true (delay_s > 0.0)
  | r -> Alcotest.failf "expected reconfigured, got %a" Wire.pp_response r);
  (* Shrink retreats from the tail back to the original size. *)
  (match Client.shrink c ~alloc_id ~delta_procs:8 with
  | Wire.Reconfigured { allocation; _ } ->
    Alcotest.(check int) "shrunk total" 16 (Allocation.total_procs allocation)
  | r -> Alcotest.failf "expected reconfigured, got %a" Wire.pp_response r);
  (* A renegotiate whose preference matches the current shape is a
     no-op: no moves, no delay. *)
  (match
     Client.renegotiate c ~alloc_id ~min_procs:8 ~pref_procs:16 ~max_procs:32
   with
  | Wire.Reconfigured { allocation; moved_procs; delay_s; _ } ->
    Alcotest.(check int) "unchanged total" 16 (Allocation.total_procs allocation);
    Alcotest.(check int) "no moves" 0 moved_procs;
    Alcotest.(check (float 1e-9)) "no delay" 0.0 delay_s
  | r -> Alcotest.failf "expected reconfigured, got %a" Wire.pp_response r);
  (* Shrinking to (or below) zero procs is rejected, not applied. *)
  (match Client.shrink c ~alloc_id ~delta_procs:16 with
  | Wire.Error { code = Wire.Reconfig_rejected; _ } -> ()
  | r -> Alcotest.failf "expected reconfig_rejected, got %a" Wire.pp_response r);
  (* Reconfiguring a dead handle is unknown_alloc, like release. *)
  (match Client.grow c ~alloc_id:9999 ~delta_procs:4 with
  | Wire.Error { code = Wire.Unknown_alloc; _ } -> ()
  | r -> Alcotest.failf "expected unknown_alloc, got %a" Wire.pp_response r);
  (* The handle survives all of the above and releases cleanly. *)
  match Client.release c ~alloc_id with
  | Wire.Released { alloc_id = id } -> Alcotest.(check int) "released" alloc_id id
  | r -> Alcotest.failf "expected released, got %a" Wire.pp_response r

let test_server_wait_threshold_retry () =
  with_server @@ fun ~path ~server:_ ->
  let c = Client.connect (`Unix path) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* A negative threshold is always exceeded: the daemon must answer
     with a retry hint carrying the load evidence, not an allocation. *)
  match Client.allocate c ~procs:8 ~wait_threshold:(-1.0) with
  | Wire.Retry { after_s; reason = Wire.Overloaded { threshold; _ } } ->
    Alcotest.(check (float 1e-9)) "echoes threshold" (-1.0) threshold;
    Alcotest.(check bool) "positive hint" true (after_s > 0.0)
  | r -> Alcotest.failf "expected overloaded retry, got %a" Wire.pp_response r

let test_server_bad_requests () =
  with_server @@ fun ~path ~server:_ ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let roundtrip line =
    output_string oc (line ^ "\n");
    flush oc;
    match Wire.decode_response (input_line ic) with
    | Ok r -> r
    | Error m -> Alcotest.failf "bad response: %s" m
  in
  (match roundtrip {|{"v":9,"id":3,"op":"status"}|} with
  | { Wire.resp_id = 3; response = Wire.Error { code = Wire.Unsupported_version; _ } } -> ()
  | _ -> Alcotest.fail "expected unsupported_version echoing id 3");
  (match roundtrip {|{"v":1,"id":4,"op":"allocate","procs":0,"policy":"random"}|} with
  | { Wire.resp_id = 4; response = Wire.Error { code = Wire.Bad_request; _ } } -> ()
  | _ -> Alcotest.fail "expected bad_request echoing id 4");
  match roundtrip "garbage" with
  | { Wire.response = Wire.Error { code = Wire.Bad_request; _ }; _ } -> ()
  | _ -> Alcotest.fail "expected bad_request for garbage"

let test_server_metrics_and_http () =
  with_server @@ fun ~path ~server:_ ->
  let c = Client.connect (`Unix path) in
  (match Client.allocate c ~procs:8 with
  | Wire.Allocated _ -> ()
  | r -> Alcotest.failf "expected allocation, got %a" Wire.pp_response r);
  (match Client.metrics c with
  | Wire.Metrics_text text ->
    let samples = Rm_telemetry.Prometheus.parse text in
    Alcotest.(check bool) "request counter present" true
      (List.exists
         (fun s -> s.Rm_telemetry.Prometheus.sample_name = "core_service_requests")
         samples)
  | r -> Alcotest.failf "expected metrics, got %a" Wire.pp_response r);
  Client.close c;
  (* HTTP scrape on the same socket. *)
  let code, body = Client.http_get (`Unix path) ~path:"/metrics" in
  Alcotest.(check int) "200" 200 code;
  let samples = Rm_telemetry.Prometheus.parse body in
  Alcotest.(check bool) "latency histogram scraped" true
    (List.exists
       (fun s ->
         s.Rm_telemetry.Prometheus.sample_name = "service_request_latency_s_count")
       samples);
  let code, _ = Client.http_get (`Unix path) ~path:"/nope" in
  Alcotest.(check int) "404" 404 code;
  let code, body = Client.http_get (`Unix path) ~path:"/status" in
  Alcotest.(check int) "status 200" 200 code;
  Alcotest.(check bool) "status is json" true
    (match Rm_telemetry.Json.of_string body with
    | Rm_telemetry.Json.Obj _ -> true
    | _ -> false
    | exception Failure _ -> false)

let test_server_control_mode () =
  with_server ~batching:false @@ fun ~path ~server:_ ->
  let c = Client.connect (`Unix path) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.allocate c ~procs:8 with
  | Wire.Allocated _ -> ()
  | r -> Alcotest.failf "expected allocation, got %a" Wire.pp_response r);
  match Client.status c with
  | Wire.Status_info s ->
    Alcotest.(check bool) "control mode reported" true (not s.Wire.batching)
  | r -> Alcotest.failf "expected status, got %a" Wire.pp_response r

let test_server_graceful_stop () =
  let metrics_out =
    Printf.sprintf "/tmp/rm-svc-test-%d-final.prom" (Unix.getpid ())
  in
  let path =
    with_server ~metrics_out @@ fun ~path ~server ->
    let c = Client.connect (`Unix path) in
    (match Client.allocate c ~procs:8 with
    | Wire.Allocated _ -> ()
    | r -> Alcotest.failf "expected allocation, got %a" Wire.pp_response r);
    Client.close c;
    Server.stop server;
    path
  in
  (* The socket is gone, and the final exposition was written and
     parses. *)
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path);
  Alcotest.(check bool) "final exposition written" true
    (Sys.file_exists metrics_out);
  let ic = open_in metrics_out in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Sys.remove metrics_out;
  Alcotest.(check bool) "exposition parses and has served requests" true
    (List.exists
       (fun s ->
         s.Rm_telemetry.Prometheus.sample_name = "core_service_requests"
         && s.Rm_telemetry.Prometheus.sample_value >= 1.0)
       (Rm_telemetry.Prometheus.parse text))

let test_server_drains_before_stopping () =
  (* Submissions admitted before the stop must all be answered: fire a
     burst from several clients, stop the server concurrently, and
     check every in-flight rpc got a definite response (allocation or a
     clean shutting_down error — never a closed socket mid-request). *)
  with_server @@ fun ~path ~server ->
  let n = 8 in
  let oks = Atomic.make 0 and shut = Atomic.make 0 and broken = Atomic.make 0 in
  let threads =
    List.init n (fun _ ->
        Thread.create
          (fun () ->
            try
              let c = Client.connect (`Unix path) in
              for _ = 1 to 3 do
                match Client.allocate c ~procs:4 ~ppn:2 with
                | Wire.Allocated _ | Wire.Retry _ -> Atomic.incr oks
                | Wire.Error { code = Wire.Shutting_down; _ } ->
                  Atomic.incr shut
                | _ -> Atomic.incr oks
              done;
              Client.close c
            with _ -> Atomic.incr broken)
          ())
  in
  Thread.delay 0.02;
  Server.stop server;
  List.iter Thread.join threads;
  Alcotest.(check int) "no torn connections" 0 (Atomic.get broken);
  Alcotest.(check bool) "every rpc answered" true
    (Atomic.get oks + Atomic.get shut = 3 * n)

(* --- Slo service report --------------------------------------------------- *)

let test_slo_service_report_empty () =
  Rm_telemetry.Metrics.reset ();
  match Slo.service_report ~policy:"no-such-policy" () with
  | Error `No_wait_data -> ()
  | Ok _ -> Alcotest.fail "expected Error `No_wait_data"

let test_slo_service_report_populated () =
  with_server @@ fun ~path ~server:_ ->
  let c = Client.connect (`Unix path) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  for _ = 1 to 5 do
    match Client.allocate c ~procs:4 with
    | Wire.Allocated { alloc_id; _ } -> ignore (Client.release c ~alloc_id)
    | r -> Alcotest.failf "expected allocation, got %a" Wire.pp_response r
  done;
  match Slo.service_report ~policy:"network-load-aware" () with
  | Error `No_wait_data -> Alcotest.fail "expected service latency data"
  | Ok r ->
    Alcotest.(check string) "tagged as service" "service" r.Slo.source;
    Alcotest.(check bool) "served at least the loop" true
      (r.Slo.jobs_finished >= 5);
    Alcotest.(check bool) "percentiles ordered" true
      (r.Slo.wait.Slo.p50 <= r.Slo.wait.Slo.p90
      && r.Slo.wait.Slo.p90 <= r.Slo.wait.Slo.p99);
    Alcotest.(check bool) "positive latency" true (r.Slo.wait.Slo.p50 > 0.0);
    let rendered = Slo.render [ r ] in
    Alcotest.(check bool) "render carries the source tag" true
      (let hay = rendered and needle = "service" in
       let h = String.length hay and n = String.length needle in
       let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
       go 0)

let suites =
  [
    ( "service.wire",
      [
        qcheck prop_request_roundtrip;
        qcheck prop_response_roundtrip;
        Alcotest.test_case "rejects bad version" `Quick
          test_wire_rejects_bad_version;
        Alcotest.test_case "v1 gates the v2 ops" `Quick
          test_wire_v1_gates_v2_ops;
        Alcotest.test_case "rejects malformed requests" `Quick
          test_wire_rejects_bad_requests;
        Alcotest.test_case "allocate defaults" `Quick test_wire_alpha_defaults;
      ] );
    ( "service.batcher",
      [
        Alcotest.test_case "fifo and backpressure" `Quick
          test_batcher_fifo_and_bounds;
        Alcotest.test_case "close semantics" `Quick test_batcher_close_semantics;
        qcheck prop_batch_equals_sequential;
        Alcotest.test_case "both decision branches" `Quick
          test_batch_covers_both_decisions;
        Alcotest.test_case "staleness exclusion" `Quick
          test_staleness_exclusion_in_batch;
      ] );
    ( "service.server",
      [
        Alcotest.test_case "allocate/status/release" `Quick
          test_server_allocate_release;
        Alcotest.test_case "grow/shrink/renegotiate" `Quick
          test_server_grow_shrink_renegotiate;
        Alcotest.test_case "wait threshold retry" `Quick
          test_server_wait_threshold_retry;
        Alcotest.test_case "bad requests answered in-band" `Quick
          test_server_bad_requests;
        Alcotest.test_case "metrics op and http scrape" `Quick
          test_server_metrics_and_http;
        Alcotest.test_case "per-request control mode" `Quick
          test_server_control_mode;
        Alcotest.test_case "graceful stop" `Quick test_server_graceful_stop;
        Alcotest.test_case "drains in-flight on stop" `Quick
          test_server_drains_before_stopping;
      ] );
    ( "service.slo",
      [
        Alcotest.test_case "service report empty" `Quick
          test_slo_service_report_empty;
        Alcotest.test_case "service report populated" `Quick
          test_slo_service_report_populated;
      ] );
  ]

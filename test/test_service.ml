(* Tests for rm_service: wire codec round-trips (qcheck), decode
   rejection, admission-queue semantics, the batcher determinism
   invariant (a batch served from one snapshot is bit-identical to
   sequential one-shot decides, including Wait and staleness-exclusion
   cases), the daemon end to end over a unix socket, and the Slo
   service report. *)

module Rng = Rm_stats.Rng
module Matrix = Rm_stats.Matrix
module Running_means = Rm_stats.Running_means
module Node = Rm_cluster.Node
module Topology = Rm_cluster.Topology
module Cluster = Rm_cluster.Cluster
module Snapshot = Rm_monitor.Snapshot
module Policies = Rm_core.Policies
module Broker = Rm_core.Broker
module Allocation = Rm_core.Allocation
module Model_cache = Rm_core.Model_cache
module Wire = Rm_service.Wire
module Batcher = Rm_service.Batcher
module Server = Rm_service.Server
module Client = Rm_service.Client
module Slo = Rm_sched.Slo

let qcheck = QCheck_alcotest.to_alcotest

(* --- wire codec --------------------------------------------------------- *)

let policy_gen = QCheck.Gen.oneofl Policies.all

let allocate_gen =
  QCheck.Gen.(
    let* procs = 1 -- 512 in
    let* ppn = opt (1 -- 64) in
    let* alpha = float_bound_inclusive 1.0 in
    let* policy = opt policy_gen in
    let* wait_threshold = opt (float_bound_inclusive 100.0) in
    (* v3 hints: lease must be strictly positive, profiles >= 0. *)
    let* lease_s = opt (map (fun l -> l +. 0.5) (float_bound_inclusive 3600.0)) in
    let* load_per_proc = opt (float_bound_inclusive 8.0) in
    let* traffic_mb_s_per_proc = opt (float_bound_inclusive 64.0) in
    return
      {
        Wire.procs;
        ppn;
        alpha;
        policy;
        wait_threshold;
        lease_s;
        load_per_proc;
        traffic_mb_s_per_proc;
      })

let grow_gen =
  QCheck.Gen.(
    let* alloc_id = 0 -- 100_000 in
    let* delta_procs = 1 -- 256 in
    let* grow_ppn = opt (1 -- 64) in
    let* grow_alpha = float_bound_inclusive 1.0 in
    let* grow_policy = opt policy_gen in
    return { Wire.alloc_id; delta_procs; grow_ppn; grow_alpha; grow_policy })

let renegotiate_gen =
  QCheck.Gen.(
    let* ren_alloc_id = 0 -- 100_000 in
    (* Generated as min + slack so the decode invariant
       1 <= min <= pref <= max holds by construction. *)
    let* min_procs = 1 -- 128 in
    let* pref_slack = 0 -- 128 in
    let* max_slack = 0 -- 128 in
    let* ren_ppn = opt (1 -- 64) in
    let* ren_alpha = float_bound_inclusive 1.0 in
    let* ren_policy = opt policy_gen in
    return
      {
        Wire.ren_alloc_id;
        min_procs;
        pref_procs = min_procs + pref_slack;
        max_procs = min_procs + pref_slack + max_slack;
        ren_ppn;
        ren_alpha;
        ren_policy;
      })

let request_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun a -> Wire.Allocate a) allocate_gen;
        map (fun id -> Wire.Release { alloc_id = id }) (0 -- 100_000);
        map (fun g -> Wire.Grow g) grow_gen;
        (let* alloc_id = 0 -- 100_000 in
         let* delta_procs = 1 -- 256 in
         return (Wire.Shrink { alloc_id; delta_procs }));
        map (fun r -> Wire.Renegotiate r) renegotiate_gen;
        return Wire.Status;
        return Wire.Metrics;
      ])

let prop_request_roundtrip =
  QCheck.Test.make ~name:"wire request encode/decode is the identity"
    ~count:200
    (QCheck.make QCheck.Gen.(pair (0 -- 1_000_000) request_gen))
    (fun (req_id, request) ->
      let line = Wire.encode_request { Wire.req_id; request } in
      match Wire.decode_request line with
      | Ok r -> r = { Wire.req_id; request }
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e.Wire.message)

let entries_gen =
  QCheck.Gen.(
    let* n = 1 -- 8 in
    let* base = 0 -- 1000 in
    let* procs = list_size (return n) (1 -- 64) in
    (* Spaced node ids: Allocation.make rejects duplicates. *)
    return (List.mapi (fun i p -> { Allocation.node = base + (3 * i); procs = p }) procs))

let status_gen =
  QCheck.Gen.(
    let* uptime_s = float_bound_inclusive 1e6 in
    let* virtual_time = float_bound_inclusive 1e7 in
    let* active_allocations = 0 -- 1000 in
    let* queue_depth = 0 -- 1000 in
    let* served = 0 -- 1_000_000 in
    let* batches = 0 -- 1_000_000 in
    let* batching = bool in
    let* draining = bool in
    let* cache_hits = 0 -- 1_000_000 in
    let* cache_misses = 0 -- 1_000_000 in
    let* overlay = bool in
    let* active_leases = 0 -- 1000 in
    return
      {
        Wire.daemon_version = Wire.version;
        uptime_s;
        virtual_time;
        active_allocations;
        queue_depth;
        served;
        batches;
        batching;
        draining;
        cache_hits;
        cache_misses;
        overlay;
        active_leases;
      })

let response_gen =
  QCheck.Gen.(
    oneof
      [
        (let* alloc_id = 1 -- 100_000 in
         let* entries = entries_gen in
         let* policy = map Policies.name policy_gen in
         let* expires_s =
           opt (map (fun l -> l +. 0.5) (float_bound_inclusive 3600.0))
         in
         return
           (Wire.Allocated
              {
                alloc_id;
                allocation = Allocation.make ~policy ~entries;
                expires_s;
              }));
        (let* alloc_id = 1 -- 100_000 in
         let* entries = entries_gen in
         let* policy = map Policies.name policy_gen in
         let* moved_procs = 0 -- 512 in
         let* delay_s = float_bound_inclusive 600.0 in
         return
           (Wire.Reconfigured
              {
                alloc_id;
                allocation = Allocation.make ~policy ~entries;
                moved_procs;
                delay_s;
              }));
        (let* after_s = float_bound_inclusive 10.0 in
         let* reason =
           oneof
             [
               return Wire.Queue_full;
               (let* mean_load_per_core = float_bound_inclusive 16.0 in
                let* threshold = float_bound_inclusive 16.0 in
                return (Wire.Overloaded { mean_load_per_core; threshold }));
             ]
         in
         return (Wire.Retry { after_s; reason }));
        map (fun id -> Wire.Released { alloc_id = id }) (1 -- 100_000);
        map (fun s -> Wire.Status_info s) status_gen;
        (* Exposition bodies carry newlines, quotes and backslashes —
           the JSON string escaping must round-trip them. *)
        map (fun s -> Wire.Metrics_text s) (string_size (0 -- 200));
        (let* code =
           oneofl
             [
               Wire.Bad_request; Wire.Unsupported_version; Wire.Shutting_down;
               Wire.Insufficient_capacity; Wire.No_usable_nodes;
               Wire.Unknown_alloc; Wire.Already_released;
               Wire.Reconfig_rejected;
             ]
         in
         let* message = string_size ~gen:printable (0 -- 80) in
         return (Wire.Error { code; message }));
      ])

let prop_response_roundtrip =
  QCheck.Test.make ~name:"wire response encode/decode is the identity"
    ~count:200
    (QCheck.make QCheck.Gen.(pair (0 -- 1_000_000) response_gen))
    (fun (resp_id, response) ->
      let line = Wire.encode_response { Wire.resp_id; response } in
      match Wire.decode_response line with
      | Ok r -> r = { Wire.resp_id; response }
      | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m)

let decode_err line =
  match Wire.decode_request line with
  | Ok _ -> Alcotest.failf "expected decode error for %s" line
  | Error e -> e

let test_wire_rejects_bad_version () =
  let e = decode_err {|{"v":9,"id":7,"op":"status"}|} in
  Alcotest.(check bool) "code" true (e.Wire.code = Wire.Unsupported_version);
  (* The id is still extracted so the error response can be correlated. *)
  Alcotest.(check (option int)) "id preserved" (Some 7) e.Wire.err_id

let test_wire_v1_gates_v2_ops () =
  (* A v1 envelope still decodes the v1 ops... *)
  (match Wire.decode_request {|{"v":1,"id":1,"op":"allocate","procs":8}|} with
  | Ok { request = Wire.Allocate _; _ } -> ()
  | Ok _ -> Alcotest.fail "expected allocate"
  | Error e -> Alcotest.failf "v1 allocate rejected: %s" e.Wire.message);
  (* ...but the malleability ops require v2, and say so. *)
  List.iter
    (fun line ->
      let e = decode_err line in
      Alcotest.(check bool)
        ("v2-only under v1: " ^ line)
        true
        (e.Wire.code = Wire.Unsupported_version))
    [
      {|{"v":1,"id":2,"op":"grow","alloc":3,"delta":4}|};
      {|{"v":1,"id":3,"op":"shrink","alloc":3,"delta":4}|};
      {|{"v":1,"id":4,"op":"renegotiate","alloc":3,"min":2,"pref":4,"max":8}|};
    ];
  (* Under a v2 envelope the same ops decode. *)
  (match Wire.decode_request {|{"v":2,"id":5,"op":"grow","alloc":3,"delta":4}|} with
  | Ok { request = Wire.Grow { alloc_id = 3; delta_procs = 4; _ }; _ } -> ()
  | Ok _ -> Alcotest.fail "expected grow"
  | Error e -> Alcotest.failf "v2 grow rejected: %s" e.Wire.message);
  match
    Wire.decode_request
      {|{"v":2,"id":6,"op":"renegotiate","alloc":3,"min":2,"pref":4,"max":8}|}
  with
  | Ok { request = Wire.Renegotiate r; _ } ->
    Alcotest.(check int) "min" 2 r.Wire.min_procs;
    Alcotest.(check int) "pref" 4 r.Wire.pref_procs;
    Alcotest.(check int) "max" 8 r.Wire.max_procs
  | Ok _ -> Alcotest.fail "expected renegotiate"
  | Error e -> Alcotest.failf "v2 renegotiate rejected: %s" e.Wire.message

let test_wire_rejects_bad_requests () =
  let bad line =
    let e = decode_err line in
    Alcotest.(check bool) ("bad_request: " ^ line) true
      (e.Wire.code = Wire.Bad_request)
  in
  bad "not json at all";
  bad {|[1,2,3]|};
  bad {|{"id":1,"op":"status"}|};  (* missing version *)
  bad {|{"v":1,"op":"status"}|};  (* missing id *)
  bad {|{"v":1,"id":1,"op":"frobnicate"}|};
  bad {|{"v":1,"id":1,"op":"allocate","procs":0,"policy":"random"}|};
  bad {|{"v":1,"id":1,"op":"allocate","procs":-4,"policy":"random"}|};
  bad {|{"v":1,"id":1,"op":"allocate","procs":8,"ppn":0,"policy":"random"}|};
  bad {|{"v":1,"id":1,"op":"allocate","procs":8,"alpha":1.5,"policy":"random"}|};
  bad {|{"v":1,"id":1,"op":"allocate","procs":8,"alpha":"x","policy":"random"}|};
  bad {|{"v":1,"id":1,"op":"allocate","procs":8,"policy":"no-such-policy"}|};
  bad {|{"v":1,"id":1,"op":"allocate","policy":"random"}|};  (* no procs *)
  bad {|{"v":1,"id":1,"op":"release"}|};  (* no alloc id *)
  bad {|{"v":2,"id":1,"op":"grow","alloc":3}|};  (* no delta *)
  bad {|{"v":2,"id":1,"op":"grow","alloc":3,"delta":0}|};
  bad {|{"v":2,"id":1,"op":"shrink","alloc":3,"delta":-1}|};
  (* renegotiate must satisfy 1 <= min <= pref <= max *)
  bad {|{"v":2,"id":1,"op":"renegotiate","alloc":3,"min":0,"pref":4,"max":8}|};
  bad {|{"v":2,"id":1,"op":"renegotiate","alloc":3,"min":4,"pref":2,"max":8}|};
  bad {|{"v":2,"id":1,"op":"renegotiate","alloc":3,"min":2,"pref":8,"max":4}|}

let test_wire_alpha_defaults () =
  match
    Wire.decode_request {|{"v":1,"id":1,"op":"allocate","procs":8}|}
  with
  | Ok { request = Wire.Allocate a; _ } ->
    Alcotest.(check (float 1e-9)) "alpha" 0.5 a.Wire.alpha;
    Alcotest.(check bool) "ppn" true (a.Wire.ppn = None);
    Alcotest.(check bool) "policy inherits" true (a.Wire.policy = None);
    Alcotest.(check bool) "threshold inherits" true (a.Wire.wait_threshold = None)
  | Ok _ -> Alcotest.fail "expected allocate"
  | Error e -> Alcotest.failf "decode failed: %s" e.Wire.message

(* --- admission queue ---------------------------------------------------- *)

let test_batcher_fifo_and_bounds () =
  let q = Batcher.create ~max_pending:3 in
  Alcotest.(check bool) "accepts 1" true (Batcher.submit q 1 = `Queued);
  Alcotest.(check bool) "accepts 2" true (Batcher.submit q 2 = `Queued);
  Alcotest.(check bool) "accepts 3" true (Batcher.submit q 3 = `Queued);
  Alcotest.(check bool) "backpressure" true (Batcher.submit q 4 = `Queue_full);
  Alcotest.(check int) "depth" 3 (Batcher.depth q);
  Alcotest.(check (list int)) "fifo, capped take" [ 1; 2 ] (Batcher.take q ~max:2);
  Alcotest.(check bool) "freed a slot" true (Batcher.submit q 5 = `Queued);
  Alcotest.(check (list int)) "drains in order" [ 3; 5 ] (Batcher.take q ~max:10)

let test_batcher_close_semantics () =
  let q = Batcher.create ~max_pending:8 in
  ignore (Batcher.submit q "a");
  ignore (Batcher.submit q "b");
  Batcher.close q;
  Alcotest.(check bool) "closed to producers" true
    (Batcher.submit q "c" = `Closed);
  Alcotest.(check (list string)) "drains the backlog" [ "a"; "b" ]
    (Batcher.take q ~max:10);
  (* Closed and empty: [] immediately, no blocking — the consumer's
     stop signal. *)
  Alcotest.(check (list string)) "then empty forever" [] (Batcher.take q ~max:10);
  Alcotest.(check bool) "reports closed" true (Batcher.is_closed q)

(* --- batcher determinism ------------------------------------------------- *)

let flat v : Running_means.view = { instant = v; m1 = v; m5 = v; m15 = v }

(* Six 8-core nodes on two switches with mixed load and per-node
   freshness: [written_at] ages make nodes 0 and 3 stale under a 30 s
   gate when the snapshot is taken at t=100. *)
let service_fixture () =
  let n = 6 in
  let node_switch = [| 0; 0; 0; 1; 1; 1 |] in
  let topology = Topology.create ~node_switch ~switches:2 () in
  let nodes =
    List.init n (fun i ->
        Node.make ~id:i
          ~hostname:(Printf.sprintf "n%d" i)
          ~cores:8 ~freq_ghz:3.0 ~mem_gb:16.0 ~switch:node_switch.(i))
  in
  let cluster = Cluster.make ~nodes ~topology in
  let loads = [| 0.5; 2.0; 1.0; 0.2; 3.0; 0.8 |] in
  let infos =
    Array.init n (fun i ->
        Some
          {
            Snapshot.static = Cluster.node cluster i;
            users = 1;
            load = flat loads.(i);
            util_pct = flat 20.0;
            nic_mb_s = flat 1.0;
            mem_avail_gb = flat 12.0;
            written_at = (if i mod 3 = 0 then 0.0 else 95.0);
          })
  in
  let mk init diagonal =
    let m = Matrix.square n ~init in
    for i = 0 to n - 1 do
      Matrix.set m i i diagonal
    done;
    m
  in
  {
    Snapshot.time = 100.0;
    cluster;
    live = List.init n (fun i -> i);
    nodes = infos;
    bw_mb_s = mk 110.0 infinity;
    peak_bw_mb_s = mk 118.0 infinity;
    lat_us = mk 70.0 0.0;
  }

let small_allocate_gen =
  QCheck.Gen.(
    let* procs = 1 -- 24 in
    let* ppn = opt (1 -- 8) in
    let* alpha = float_bound_inclusive 1.0 in
    let* policy = opt policy_gen in
    (* Mix inherit / never-wait / always-wait so both decision branches
       appear in batches: mean load per core is > 0 on the fixture, so
       a -1 threshold forces Wait and a 100 threshold never fires. *)
    let* wait_threshold = oneofl [ None; Some 100.0; Some (-1.0) ] in
    return
      {
        Wire.procs;
        ppn;
        alpha;
        policy;
        wait_threshold;
        lease_s = None;
        load_per_proc = None;
        traffic_mb_s_per_proc = None;
      })

let batch_gen =
  QCheck.Gen.(
    let* seed = 0 -- 1_000_000 in
    let* staleness = oneofl [ infinity; 30.0 ] in
    let* params = list_size (1 -- 16) small_allocate_gen in
    return (seed, staleness, params))

(* The service's core invariant: serving a batch from one snapshot is
   bit-identical to N sequential one-shot Broker.decide calls on that
   snapshot — same decisions, same rng consumption — even though the
   sequential side rebuilds its models from scratch each call (cleared
   cache) while the batch reuses one Model_cache entry. Covers Wait
   (forced thresholds) and max_staleness_s exclusion. *)
let prop_batch_equals_sequential =
  QCheck.Test.make
    ~name:"serve_batch ≡ sequential one-shot decides (incl. Wait, staleness)"
    ~count:60 (QCheck.make batch_gen)
    (fun (seed, staleness, params) ->
      let snapshot = service_fixture () in
      let base = { Broker.default_config with max_staleness_s = staleness } in
      Model_cache.clear ();
      let batched =
        Batcher.serve_batch ~base ~snapshot ~rng:(Rng.create seed) params
      in
      let rng = Rng.create seed in
      let sequential =
        List.map
          (fun a ->
            Model_cache.clear ();
            Broker.decide
              ~config:(Batcher.broker_config ~base a)
              ~snapshot
              ~request:(Batcher.request_of a)
              ~rng)
          params
      in
      Model_cache.clear ();
      batched = sequential)

let test_batch_covers_both_decisions () =
  (* Not just "they agree": check the fixture really produces both
     Allocated and Wait outcomes, so the property above is not
     vacuously comparing one branch. *)
  let snapshot = service_fixture () in
  let base = Broker.default_config in
  let mk wait_threshold =
    {
      Wire.procs = 8;
      ppn = Some 4;
      alpha = 0.5;
      policy = Some Policies.Network_load_aware;
      wait_threshold;
      lease_s = None;
      load_per_proc = None;
      traffic_mb_s_per_proc = None;
    }
  in
  let outcomes =
    Batcher.serve_batch ~base ~snapshot ~rng:(Rng.create 1)
      [ mk None; mk (Some (-1.0)) ]
  in
  (match outcomes with
  | [ Ok (Broker.Allocated _); Ok (Broker.Wait _) ] -> ()
  | _ -> Alcotest.fail "expected [Allocated; Wait]");
  Model_cache.clear ()

let test_staleness_exclusion_in_batch () =
  let snapshot = service_fixture () in
  let base = { Broker.default_config with max_staleness_s = 30.0 } in
  let a =
    {
      Wire.procs = 8;
      ppn = Some 4;
      alpha = 0.5;
      policy = Some Policies.Network_load_aware;
      wait_threshold = None;
      lease_s = None;
      load_per_proc = None;
      traffic_mb_s_per_proc = None;
    }
  in
  (match Batcher.serve_batch ~base ~snapshot ~rng:(Rng.create 2) [ a ] with
  | [ Ok (Broker.Allocated alloc) ] ->
    (* Nodes 0 and 3 are stale (written_at 0.0, snapshot t=100, gate
       30s) and must never be chosen. *)
    List.iter
      (fun node ->
        Alcotest.(check bool)
          (Printf.sprintf "node %d not stale" node)
          true
          (node <> 0 && node <> 3))
      (Allocation.node_ids alloc)
  | _ -> Alcotest.fail "expected one allocation");
  Model_cache.clear ()

(* --- server end to end --------------------------------------------------- *)

let with_server ?(batching = true) ?(broker = Broker.default_config)
    ?metrics_out ?(overlay = true) ?lease f =
  let path =
    Printf.sprintf "/tmp/rm-svc-test-%d-%s.sock" (Unix.getpid ())
      (if batching then "b" else "c")
  in
  let config =
    {
      (Server.default_config ~endpoint:(Server.Unix_socket path)) with
      nodes = Some 12;
      tick_s = 0.005;
      batching;
      broker;
      metrics_out;
      overlay;
      default_lease_s = lease;
    }
  in
  let was_enabled = Rm_telemetry.Runtime.is_enabled () in
  Rm_telemetry.Runtime.enable ();
  let server = Server.create config in
  Server.start server;
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Model_cache.clear ();
      if not was_enabled then Rm_telemetry.Runtime.disable ())
    (fun () -> f ~path ~server)

let test_server_allocate_release () =
  with_server @@ fun ~path ~server:_ ->
  let c = Client.connect (`Unix path) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let alloc_id =
    match Client.allocate c ~ppn:4 ~procs:16 with
    | Wire.Allocated { alloc_id; allocation; _ } ->
      Alcotest.(check int) "all procs placed" 16
        (Allocation.total_procs allocation);
      Alcotest.(check string) "policy" "network-load-aware"
        allocation.Allocation.policy;
      alloc_id
    | r -> Alcotest.failf "expected allocation, got %a" Wire.pp_response r
  in
  (match Client.status c with
  | Wire.Status_info s ->
    Alcotest.(check int) "one active" 1 s.Wire.active_allocations;
    Alcotest.(check bool) "served some" true (s.Wire.served >= 1);
    Alcotest.(check bool) "batching on" true s.Wire.batching;
    Alcotest.(check bool) "not draining" true (not s.Wire.draining)
  | r -> Alcotest.failf "expected status, got %a" Wire.pp_response r);
  (match Client.release c ~alloc_id with
  | Wire.Released { alloc_id = id } -> Alcotest.(check int) "same id" alloc_id id
  | r -> Alcotest.failf "expected released, got %a" Wire.pp_response r);
  (* Releasing the same id again is typed distinctly from releasing an
     id that was never granted. *)
  (match Client.release c ~alloc_id with
  | Wire.Error { code = Wire.Already_released; _ } -> ()
  | r -> Alcotest.failf "expected already_released, got %a" Wire.pp_response r);
  match Client.release c ~alloc_id:424242 with
  | Wire.Error { code = Wire.Unknown_alloc; _ } -> ()
  | r -> Alcotest.failf "expected unknown_alloc, got %a" Wire.pp_response r

let test_server_grow_shrink_renegotiate () =
  with_server @@ fun ~path ~server:_ ->
  let c = Client.connect (`Unix path) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let alloc_id, nodes0 =
    match Client.allocate c ~ppn:4 ~procs:16 with
    | Wire.Allocated { alloc_id; allocation; _ } ->
      (alloc_id, Allocation.node_ids allocation)
    | r -> Alcotest.failf "expected allocation, got %a" Wire.pp_response r
  in
  (* Grow adds procs on fresh nodes: the original placement is kept,
     and the delta ranks must receive redistributed data, which costs a
     modeled delay. *)
  (match Client.grow c ~ppn:4 ~alloc_id ~delta_procs:8 with
  | Wire.Reconfigured { alloc_id = id; allocation; moved_procs; delay_s } ->
    Alcotest.(check int) "same id" alloc_id id;
    Alcotest.(check int) "grown total" 24 (Allocation.total_procs allocation);
    Alcotest.(check int) "delta ranks receive data" 8 moved_procs;
    Alcotest.(check bool) "original nodes kept" true
      (List.for_all
         (fun n -> List.mem n (Allocation.node_ids allocation))
         nodes0);
    Alcotest.(check bool) "positive delay" true (delay_s > 0.0)
  | r -> Alcotest.failf "expected reconfigured, got %a" Wire.pp_response r);
  (* Shrink retreats from the tail back to the original size. *)
  (match Client.shrink c ~alloc_id ~delta_procs:8 with
  | Wire.Reconfigured { allocation; _ } ->
    Alcotest.(check int) "shrunk total" 16 (Allocation.total_procs allocation)
  | r -> Alcotest.failf "expected reconfigured, got %a" Wire.pp_response r);
  (* A renegotiate whose preference matches the current shape is a
     no-op: no moves, no delay. *)
  (match
     Client.renegotiate c ~alloc_id ~min_procs:8 ~pref_procs:16 ~max_procs:32
   with
  | Wire.Reconfigured { allocation; moved_procs; delay_s; _ } ->
    Alcotest.(check int) "unchanged total" 16 (Allocation.total_procs allocation);
    Alcotest.(check int) "no moves" 0 moved_procs;
    Alcotest.(check (float 1e-9)) "no delay" 0.0 delay_s
  | r -> Alcotest.failf "expected reconfigured, got %a" Wire.pp_response r);
  (* Shrinking to (or below) zero procs is rejected, not applied. *)
  (match Client.shrink c ~alloc_id ~delta_procs:16 with
  | Wire.Error { code = Wire.Reconfig_rejected; _ } -> ()
  | r -> Alcotest.failf "expected reconfig_rejected, got %a" Wire.pp_response r);
  (* Reconfiguring a dead handle is unknown_alloc, like release. *)
  (match Client.grow c ~alloc_id:9999 ~delta_procs:4 with
  | Wire.Error { code = Wire.Unknown_alloc; _ } -> ()
  | r -> Alcotest.failf "expected unknown_alloc, got %a" Wire.pp_response r);
  (* The handle survives all of the above and releases cleanly. *)
  match Client.release c ~alloc_id with
  | Wire.Released { alloc_id = id } -> Alcotest.(check int) "released" alloc_id id
  | r -> Alcotest.failf "expected released, got %a" Wire.pp_response r

let test_server_wait_threshold_retry () =
  with_server @@ fun ~path ~server:_ ->
  let c = Client.connect (`Unix path) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* A negative threshold is always exceeded: the daemon must answer
     with a retry hint carrying the load evidence, not an allocation. *)
  match Client.allocate c ~procs:8 ~wait_threshold:(-1.0) with
  | Wire.Retry { after_s; reason = Wire.Overloaded { threshold; _ } } ->
    Alcotest.(check (float 1e-9)) "echoes threshold" (-1.0) threshold;
    Alcotest.(check bool) "positive hint" true (after_s > 0.0)
  | r -> Alcotest.failf "expected overloaded retry, got %a" Wire.pp_response r

let test_server_bad_requests () =
  with_server @@ fun ~path ~server:_ ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let roundtrip line =
    output_string oc (line ^ "\n");
    flush oc;
    match Wire.decode_response (input_line ic) with
    | Ok r -> r
    | Error m -> Alcotest.failf "bad response: %s" m
  in
  (match roundtrip {|{"v":9,"id":3,"op":"status"}|} with
  | { Wire.resp_id = 3; response = Wire.Error { code = Wire.Unsupported_version; _ } } -> ()
  | _ -> Alcotest.fail "expected unsupported_version echoing id 3");
  (match roundtrip {|{"v":1,"id":4,"op":"allocate","procs":0,"policy":"random"}|} with
  | { Wire.resp_id = 4; response = Wire.Error { code = Wire.Bad_request; _ } } -> ()
  | _ -> Alcotest.fail "expected bad_request echoing id 4");
  match roundtrip "garbage" with
  | { Wire.response = Wire.Error { code = Wire.Bad_request; _ }; _ } -> ()
  | _ -> Alcotest.fail "expected bad_request for garbage"

let test_server_metrics_and_http () =
  with_server @@ fun ~path ~server:_ ->
  let c = Client.connect (`Unix path) in
  (match Client.allocate c ~procs:8 with
  | Wire.Allocated _ -> ()
  | r -> Alcotest.failf "expected allocation, got %a" Wire.pp_response r);
  (match Client.metrics c with
  | Wire.Metrics_text text ->
    let samples = Rm_telemetry.Prometheus.parse text in
    Alcotest.(check bool) "request counter present" true
      (List.exists
         (fun s -> s.Rm_telemetry.Prometheus.sample_name = "core_service_requests")
         samples)
  | r -> Alcotest.failf "expected metrics, got %a" Wire.pp_response r);
  Client.close c;
  (* HTTP scrape on the same socket. *)
  let code, body = Client.http_get (`Unix path) ~path:"/metrics" in
  Alcotest.(check int) "200" 200 code;
  let samples = Rm_telemetry.Prometheus.parse body in
  Alcotest.(check bool) "latency histogram scraped" true
    (List.exists
       (fun s ->
         s.Rm_telemetry.Prometheus.sample_name = "service_request_latency_s_count")
       samples);
  let code, _ = Client.http_get (`Unix path) ~path:"/nope" in
  Alcotest.(check int) "404" 404 code;
  let code, body = Client.http_get (`Unix path) ~path:"/status" in
  Alcotest.(check int) "status 200" 200 code;
  Alcotest.(check bool) "status is json" true
    (match Rm_telemetry.Json.of_string body with
    | Rm_telemetry.Json.Obj _ -> true
    | _ -> false
    | exception Failure _ -> false)

let test_server_control_mode () =
  with_server ~batching:false @@ fun ~path ~server:_ ->
  let c = Client.connect (`Unix path) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.allocate c ~procs:8 with
  | Wire.Allocated _ -> ()
  | r -> Alcotest.failf "expected allocation, got %a" Wire.pp_response r);
  match Client.status c with
  | Wire.Status_info s ->
    Alcotest.(check bool) "control mode reported" true (not s.Wire.batching)
  | r -> Alcotest.failf "expected status, got %a" Wire.pp_response r

let test_server_graceful_stop () =
  let metrics_out =
    Printf.sprintf "/tmp/rm-svc-test-%d-final.prom" (Unix.getpid ())
  in
  let path =
    with_server ~metrics_out @@ fun ~path ~server ->
    let c = Client.connect (`Unix path) in
    (match Client.allocate c ~procs:8 with
    | Wire.Allocated _ -> ()
    | r -> Alcotest.failf "expected allocation, got %a" Wire.pp_response r);
    Client.close c;
    Server.stop server;
    path
  in
  (* The socket is gone, and the final exposition was written and
     parses. *)
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path);
  Alcotest.(check bool) "final exposition written" true
    (Sys.file_exists metrics_out);
  let ic = open_in metrics_out in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Sys.remove metrics_out;
  Alcotest.(check bool) "exposition parses and has served requests" true
    (List.exists
       (fun s ->
         s.Rm_telemetry.Prometheus.sample_name = "core_service_requests"
         && s.Rm_telemetry.Prometheus.sample_value >= 1.0)
       (Rm_telemetry.Prometheus.parse text))

let test_server_drains_before_stopping () =
  (* Submissions admitted before the stop must all be answered: fire a
     burst from several clients, stop the server concurrently, and
     check every in-flight rpc got a definite response (allocation or a
     clean shutting_down error — never a closed socket mid-request). *)
  with_server @@ fun ~path ~server ->
  let n = 8 in
  let oks = Atomic.make 0 and shut = Atomic.make 0 and broken = Atomic.make 0 in
  let threads =
    List.init n (fun _ ->
        Thread.create
          (fun () ->
            try
              let c = Client.connect (`Unix path) in
              for _ = 1 to 3 do
                match Client.allocate c ~procs:4 ~ppn:2 with
                | Wire.Allocated _ | Wire.Retry _ -> Atomic.incr oks
                | Wire.Error { code = Wire.Shutting_down; _ } ->
                  Atomic.incr shut
                | _ -> Atomic.incr oks
              done;
              Client.close c
            with _ -> Atomic.incr broken)
          ())
  in
  Thread.delay 0.02;
  Server.stop server;
  List.iter Thread.join threads;
  Alcotest.(check int) "no torn connections" 0 (Atomic.get broken);
  Alcotest.(check bool) "every rpc answered" true
    (Atomic.get oks + Atomic.get shut = 3 * n)

(* --- grant overlay -------------------------------------------------------- *)

module Overlay = Rm_monitor.Overlay

let overlay_entry_gen =
  QCheck.Gen.(
    let load_gen = small_list (pair (0 -- 5) (float_bound_inclusive 4.0)) in
    let edge_gen =
      let* a = 0 -- 5 in
      let* d = 1 -- 5 in
      let* mb = float_bound_inclusive 32.0 in
      return ((a, (a + d) mod 6), mb)
    in
    pair load_gen (small_list edge_gen))

let overlay_op_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun e -> `Register e) overlay_entry_gen;
        map2 (fun k e -> `Set (k, e)) (0 -- 7) overlay_entry_gen;
        map (fun k -> `Remove k) (0 -- 7);
      ])

(* Satellite 4: for any interleaving of grant / reshape / release, the
   registry's totals equal the sum over live registrations — nothing
   leaks, nothing goes negative — and draining every grant restores
   the physical-identity overlay. *)
let prop_overlay_conservation =
  QCheck.Test.make ~count:300
    ~name:"overlay totals equal the sum of live grants"
    (QCheck.make QCheck.Gen.(small_list overlay_op_gen))
    (fun ops ->
      let t = Overlay.create ~node_count:6 in
      let live = ref [] in
      let pick k =
        match !live with
        | [] -> None
        | l -> Some (List.nth l (k mod List.length l))
      in
      List.iter
        (fun op ->
          match op with
          | `Register (load, traffic) ->
            let h = Overlay.register t ~load ~traffic in
            live := (h, load, traffic) :: !live
          | `Set (k, (load, traffic)) -> (
            match pick k with
            | None -> ()
            | Some (h, _, _) ->
              Overlay.set t h ~load ~traffic;
              live :=
                List.map
                  (fun (h', l, tr) ->
                    if h' = h then (h', load, traffic) else (h', l, tr))
                  !live)
          | `Remove k -> (
            match pick k with
            | None -> ()
            | Some (h, _, _) ->
              Overlay.remove t h;
              (* removal is idempotent *)
              Overlay.remove t h;
              live := List.filter (fun (h', _, _) -> h' <> h) !live))
        ops;
      let sum_amounts l = List.fold_left (fun a (_, x) -> a +. x) 0.0 l in
      let sum_by f =
        List.fold_left
          (fun acc (_, load, traffic) -> acc +. f load traffic)
          0.0 !live
      in
      let close a b = Float.abs (a -. b) <= 1e-6 +. (1e-9 *. Float.abs b) in
      let ok_totals =
        close (Overlay.total_load t) (sum_by (fun l _ -> sum_amounts l))
        && close
             (Overlay.total_traffic_mb_s t)
             (sum_by (fun _ tr -> sum_amounts tr))
        && Overlay.active t = List.length !live
      in
      let ok_nodes =
        List.for_all
          (fun node ->
            Overlay.load_on t ~node >= 0.0
            && close
                 (Overlay.load_on t ~node)
                 (sum_by (fun l _ ->
                      sum_amounts (List.filter (fun (n, _) -> n = node) l))))
          [ 0; 1; 2; 3; 4; 5 ]
      in
      List.iter (fun (h, _, _) -> Overlay.remove t h) !live;
      let snap = service_fixture () in
      ok_totals && ok_nodes && Overlay.is_empty t
      && Overlay.total_load t = 0.0
      && Overlay.apply t snap == snap)

(* Pointwise composition: node loads gain the granted compute load on
   every running-means view, measured bandwidth loses each endpoint's
   incident traffic (clamped), and untouched cells stay untouched. An
   empty registry is the physical identity — the overlay-off server
   path composes nothing, bit-identical to the pre-overlay daemon. *)
let test_overlay_compose () =
  let snap = service_fixture () in
  let t = Overlay.create ~node_count:6 in
  Alcotest.(check bool) "empty registry is physical identity" true
    (Overlay.apply t snap == snap);
  let h =
    Overlay.register t ~load:[ (1, 2.0); (2, 1.0) ] ~traffic:[ ((1, 2), 40.0) ]
  in
  let composed = Overlay.apply t snap in
  let view n (s : Snapshot.t) =
    match s.Snapshot.nodes.(n) with
    | Some i -> i.Snapshot.load
    | None -> Alcotest.fail "fixture node missing"
  in
  Alcotest.(check (float 1e-9)) "node 1 gains instant load" 4.0
    (view 1 composed).Running_means.instant;
  Alcotest.(check (float 1e-9)) "node 1 gains m15 load" 4.0
    (view 1 composed).Running_means.m15;
  Alcotest.(check (float 1e-9)) "node 2 gains its share" 2.0
    (view 2 composed).Running_means.instant;
  Alcotest.(check (float 1e-9)) "node 0 untouched" 0.5
    (view 0 composed).Running_means.instant;
  Alcotest.(check (float 1e-9)) "overlaid edge loses both endpoints" 30.0
    (Matrix.get composed.Snapshot.bw_mb_s 1 2);
  Alcotest.(check (float 1e-9)) "edge to clean node loses one endpoint" 70.0
    (Matrix.get composed.Snapshot.bw_mb_s 1 0);
  Alcotest.(check (float 1e-9)) "clean edge untouched" 110.0
    (Matrix.get composed.Snapshot.bw_mb_s 0 3);
  Alcotest.(check bool) "peak matrix shared" true
    (composed.Snapshot.peak_bw_mb_s == snap.Snapshot.peak_bw_mb_s);
  Overlay.remove t h;
  Alcotest.(check bool) "drained registry is identity again" true
    (Overlay.apply t snap == snap)

(* Tentpole e2e: with overlays on, concurrently-live grants never share
   a node — the daemon holds granted nodes out of the pool until they
   are released, and a full cluster answers with a typed capacity
   error instead of double-booking. *)
let test_server_overlay_disjoint_grants () =
  with_server @@ fun ~path ~server:_ ->
  let c = Client.connect (`Unix path) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let rec fill acc =
    match Client.allocate c ~ppn:4 ~procs:16 with
    | Wire.Allocated { alloc_id; allocation; _ } ->
      fill ((alloc_id, Allocation.node_ids allocation) :: acc)
    | Wire.Error
        { code = Wire.Insufficient_capacity | Wire.No_usable_nodes; _ } ->
      acc
    | r -> Alcotest.failf "expected grant or capacity error, got %a"
             Wire.pp_response r
  in
  let grants = fill [] in
  Alcotest.(check int) "12-node cluster fits three 4-node grants" 3
    (List.length grants);
  let rec pairwise_disjoint = function
    | [] -> true
    | (_, nodes) :: rest ->
      List.for_all
        (fun (_, other) -> not (List.exists (fun n -> List.mem n other) nodes))
        rest
      && pairwise_disjoint rest
  in
  Alcotest.(check bool) "live grants are pairwise node-disjoint" true
    (pairwise_disjoint grants);
  (match Client.status c with
  | Wire.Status_info s ->
    Alcotest.(check bool) "overlay reported on" true s.Wire.overlay
  | r -> Alcotest.failf "expected status, got %a" Wire.pp_response r);
  (* Releasing one grant frees exactly its nodes for the next client. *)
  let released_id, released_nodes = List.hd grants in
  (match Client.release c ~alloc_id:released_id with
  | Wire.Released _ -> ()
  | r -> Alcotest.failf "expected released, got %a" Wire.pp_response r);
  match Client.allocate c ~ppn:4 ~procs:16 with
  | Wire.Allocated { allocation; _ } ->
    Alcotest.(check bool) "regrant reuses only the freed nodes" true
      (List.for_all
         (fun n -> List.mem n released_nodes)
         (Allocation.node_ids allocation))
  | r -> Alcotest.failf "expected regrant, got %a" Wire.pp_response r

(* Satellite 4 (flip side): overlay-off is the pre-overlay daemon —
   grants are bookkeeping only, so back-to-back allocations double-book
   the same best-scoring nodes. Pins the behavior the tentpole fixes
   (and that --no-overlay deliberately preserves). *)
let test_server_overlay_off_double_books () =
  with_server ~overlay:false @@ fun ~path ~server:_ ->
  let c = Client.connect (`Unix path) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let grab () =
    match Client.allocate c ~ppn:4 ~procs:16 with
    | Wire.Allocated { allocation; _ } -> Allocation.node_ids allocation
    | r -> Alcotest.failf "expected allocation, got %a" Wire.pp_response r
  in
  let a = grab () in
  let b = grab () in
  Alcotest.(check bool) "second live grant overlaps the first" true
    (List.exists (fun n -> List.mem n b) a);
  match Client.status c with
  | Wire.Status_info s ->
    Alcotest.(check bool) "overlay reported off" true (not s.Wire.overlay);
    Alcotest.(check int) "both grants live" 2 s.Wire.active_allocations
  | r -> Alcotest.failf "expected status, got %a" Wire.pp_response r

(* Satellite 3: a v2 shrink that drops every rank on a node is a
   partial release — the emptied node returns to the grantable pool
   immediately, observable as the only node the next grant can get on
   an otherwise-full cluster. *)
let test_server_shrink_frees_node () =
  with_server @@ fun ~path ~server:_ ->
  let c = Client.connect (`Unix path) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let rec fill acc =
    match Client.allocate c ~ppn:4 ~procs:16 with
    | Wire.Allocated { alloc_id; allocation; _ } ->
      fill ((alloc_id, Allocation.node_ids allocation) :: acc)
    | Wire.Error
        { code = Wire.Insufficient_capacity | Wire.No_usable_nodes; _ } ->
      acc
    | r -> Alcotest.failf "expected grant or capacity error, got %a"
             Wire.pp_response r
  in
  let grants = fill [] in
  Alcotest.(check int) "cluster saturated" 3 (List.length grants);
  let victim_id, victim_nodes = List.hd grants in
  (* Drop one node's worth of ranks from the tail of the victim. *)
  let survivors =
    match Client.shrink c ~alloc_id:victim_id ~delta_procs:4 with
    | Wire.Reconfigured { allocation; _ } -> Allocation.node_ids allocation
    | r -> Alcotest.failf "expected reconfigured, got %a" Wire.pp_response r
  in
  let freed = List.filter (fun n -> not (List.mem n survivors)) victim_nodes in
  Alcotest.(check int) "shrink emptied exactly one node" 1 (List.length freed);
  match Client.allocate c ~ppn:4 ~procs:4 with
  | Wire.Allocated { allocation; _ } ->
    Alcotest.(check (list int)) "regrant lands on the freed node" freed
      (Allocation.node_ids allocation)
  | r -> Alcotest.failf "expected regrant on freed node, got %a"
           Wire.pp_response r

(* Leases: a grant with a TTL is swept once it expires — its overlay
   and node hold disappear, and a late release is answered with the
   same typed already_released error as a double release. *)
let test_server_lease_expiry () =
  with_server ~lease:0.05 @@ fun ~path ~server:_ ->
  let c = Client.connect (`Unix path) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let alloc_id =
    match Client.allocate c ~ppn:4 ~procs:16 with
    | Wire.Allocated { alloc_id; expires_s; _ } ->
      (match expires_s with
      | Some s -> Alcotest.(check (float 1e-9)) "config lease echoed" 0.05 s
      | None -> Alcotest.fail "expected a lease on the grant");
      alloc_id
    | r -> Alcotest.failf "expected allocation, got %a" Wire.pp_response r
  in
  (* A per-request lease overrides the config default. *)
  (match Client.allocate c ~ppn:4 ~procs:4 ~lease_s:3600.0 with
  | Wire.Allocated { expires_s = Some s; _ } ->
    Alcotest.(check (float 1e-9)) "request lease wins" 3600.0 s
  | r -> Alcotest.failf "expected leased allocation, got %a" Wire.pp_response r);
  (match Client.status c with
  | Wire.Status_info s -> Alcotest.(check int) "leases counted" 2 s.Wire.active_leases
  | r -> Alcotest.failf "expected status, got %a" Wire.pp_response r);
  Thread.delay 0.2;
  (* The sweep runs at the top of the next served batch, before this
     very release is looked up: the short lease is already a tombstone. *)
  (match Client.release c ~alloc_id with
  | Wire.Error { code = Wire.Already_released; _ } -> ()
  | r -> Alcotest.failf "expected already_released, got %a" Wire.pp_response r);
  match Client.status c with
  | Wire.Status_info s ->
    Alcotest.(check int) "only the long lease survives" 1
      s.Wire.active_allocations
  | r -> Alcotest.failf "expected status, got %a" Wire.pp_response r

(* --- Slo service report --------------------------------------------------- *)

let test_slo_service_report_empty () =
  Rm_telemetry.Metrics.reset ();
  match Slo.service_report ~policy:"no-such-policy" () with
  | Error `No_wait_data -> ()
  | Ok _ -> Alcotest.fail "expected Error `No_wait_data"

let test_slo_service_report_populated () =
  with_server @@ fun ~path ~server:_ ->
  let c = Client.connect (`Unix path) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  for _ = 1 to 5 do
    match Client.allocate c ~procs:4 with
    | Wire.Allocated { alloc_id; _ } -> ignore (Client.release c ~alloc_id)
    | r -> Alcotest.failf "expected allocation, got %a" Wire.pp_response r
  done;
  match Slo.service_report ~policy:"network-load-aware" () with
  | Error `No_wait_data -> Alcotest.fail "expected service latency data"
  | Ok r ->
    Alcotest.(check string) "tagged as service" "service" r.Slo.source;
    Alcotest.(check bool) "served at least the loop" true
      (r.Slo.jobs_finished >= 5);
    Alcotest.(check bool) "percentiles ordered" true
      (r.Slo.wait.Slo.p50 <= r.Slo.wait.Slo.p90
      && r.Slo.wait.Slo.p90 <= r.Slo.wait.Slo.p99);
    Alcotest.(check bool) "positive latency" true (r.Slo.wait.Slo.p50 > 0.0);
    let rendered = Slo.render [ r ] in
    Alcotest.(check bool) "render carries the source tag" true
      (let hay = rendered and needle = "service" in
       let h = String.length hay and n = String.length needle in
       let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
       go 0)

let suites =
  [
    ( "service.wire",
      [
        qcheck prop_request_roundtrip;
        qcheck prop_response_roundtrip;
        Alcotest.test_case "rejects bad version" `Quick
          test_wire_rejects_bad_version;
        Alcotest.test_case "v1 gates the v2 ops" `Quick
          test_wire_v1_gates_v2_ops;
        Alcotest.test_case "rejects malformed requests" `Quick
          test_wire_rejects_bad_requests;
        Alcotest.test_case "allocate defaults" `Quick test_wire_alpha_defaults;
      ] );
    ( "service.batcher",
      [
        Alcotest.test_case "fifo and backpressure" `Quick
          test_batcher_fifo_and_bounds;
        Alcotest.test_case "close semantics" `Quick test_batcher_close_semantics;
        qcheck prop_batch_equals_sequential;
        Alcotest.test_case "both decision branches" `Quick
          test_batch_covers_both_decisions;
        Alcotest.test_case "staleness exclusion" `Quick
          test_staleness_exclusion_in_batch;
      ] );
    ( "service.server",
      [
        Alcotest.test_case "allocate/status/release" `Quick
          test_server_allocate_release;
        Alcotest.test_case "grow/shrink/renegotiate" `Quick
          test_server_grow_shrink_renegotiate;
        Alcotest.test_case "wait threshold retry" `Quick
          test_server_wait_threshold_retry;
        Alcotest.test_case "bad requests answered in-band" `Quick
          test_server_bad_requests;
        Alcotest.test_case "metrics op and http scrape" `Quick
          test_server_metrics_and_http;
        Alcotest.test_case "per-request control mode" `Quick
          test_server_control_mode;
        Alcotest.test_case "graceful stop" `Quick test_server_graceful_stop;
        Alcotest.test_case "drains in-flight on stop" `Quick
          test_server_drains_before_stopping;
      ] );
    ( "service.overlay",
      [
        qcheck prop_overlay_conservation;
        Alcotest.test_case "snapshot composition" `Quick test_overlay_compose;
        Alcotest.test_case "live grants stay node-disjoint" `Quick
          test_server_overlay_disjoint_grants;
        Alcotest.test_case "overlay-off double-books (pinned)" `Quick
          test_server_overlay_off_double_books;
        Alcotest.test_case "shrink to zero on a node frees it" `Quick
          test_server_shrink_frees_node;
        Alcotest.test_case "lease expiry sweeps the grant" `Quick
          test_server_lease_expiry;
      ] );
    ( "service.slo",
      [
        Alcotest.test_case "service report empty" `Quick
          test_slo_service_report_empty;
        Alcotest.test_case "service report populated" `Quick
          test_slo_service_report_populated;
      ] );
  ]

(* Tests for rm_telemetry: metrics registry semantics, span nesting and
   ring eviction, trace determinism under a fixed seed, audit JSONL
   round-trips, and the JSON codec underneath them. *)

module Telemetry = Rm_telemetry
module Runtime = Telemetry.Runtime
module Metrics = Telemetry.Metrics
module Trace = Telemetry.Trace
module Audit = Telemetry.Audit
module Json = Telemetry.Json
module Rng = Rm_stats.Rng
module Sim = Rm_engine.Sim
module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module System = Rm_monitor.System
module Snapshot = Rm_monitor.Snapshot
module Broker = Rm_core.Broker
module Request = Rm_core.Request

(* The registry, trace buffer and audit ring are process-global; every
   test runs against clean state and leaves telemetry disabled. *)
let scrub () =
  Runtime.disable ();
  Metrics.reset ();
  Trace.clear ();
  Audit.clear ()

let with_telemetry f =
  scrub ();
  Runtime.enable ();
  Fun.protect ~finally:scrub f

let check_float = Alcotest.(check (float 1e-9))

(* --- Metrics ----------------------------------------------------------- *)

let test_disabled_ops_are_noops () =
  scrub ();
  let c = Metrics.counter "t.disabled.c" in
  let g = Metrics.gauge "t.disabled.g" in
  let h = Metrics.histogram "t.disabled.h" in
  Metrics.incr c;
  Metrics.add c 5.0;
  Metrics.set g 3.0;
  Metrics.observe h 0.5;
  check_float "counter untouched" 0.0 (Metrics.value c);
  check_float "gauge untouched" 0.0 (Metrics.value g);
  Alcotest.(check int) "histogram untouched" 0 (Metrics.count h)

let test_counter_semantics () =
  with_telemetry (fun () ->
      let c = Metrics.counter "t.counter" in
      Metrics.incr c;
      Metrics.incr c;
      Metrics.add c 2.5;
      check_float "accumulates" 4.5 (Metrics.value c);
      Alcotest.check_raises "negative delta"
        (Invalid_argument "Metrics.add: negative counter delta") (fun () ->
          Metrics.add c (-1.0));
      Alcotest.check_raises "set on counter"
        (Invalid_argument "Metrics.set: not a gauge") (fun () ->
          Metrics.set c 1.0))

let test_gauge_semantics () =
  with_telemetry (fun () ->
      let g = Metrics.gauge "t.gauge" in
      Metrics.set g 7.0;
      Metrics.add g (-2.5);
      check_float "set then add" 4.5 (Metrics.value g);
      Alcotest.check_raises "incr on gauge"
        (Invalid_argument "Metrics.incr: not a counter") (fun () ->
          Metrics.incr g))

let test_histogram_semantics () =
  with_telemetry (fun () ->
      let h = Metrics.histogram ~buckets:[| 1.0; 10.0; 100.0 |] "t.hist" in
      List.iter (Metrics.observe h) [ 0.5; 1.0; 5.0; 50.0; 5000.0 ];
      Alcotest.(check int) "count" 5 (Metrics.count h);
      check_float "sum" 5056.5 (Metrics.value h);
      Alcotest.(check (list (pair (float 1e-9) int)))
        "per-bucket counts"
        [ (1.0, 2); (10.0, 1); (100.0, 1); (infinity, 1) ]
        (Metrics.bucket_counts h))

let test_label_families_and_identity () =
  with_telemetry (fun () ->
      let a = Metrics.counter ~labels:[ ("policy", "random") ] "t.family" in
      let b = Metrics.counter ~labels:[ ("policy", "nla") ] "t.family" in
      Metrics.incr a;
      check_float "members are distinct" 0.0 (Metrics.value b);
      (* Same identity (labels in any order) returns the same handle. *)
      let a' = Metrics.counter ~labels:[ ("policy", "random") ] "t.family" in
      Metrics.incr a';
      check_float "same handle" 2.0 (Metrics.value a);
      Alcotest.(check bool)
        "find locates the member" true
        (Metrics.find ~labels:[ ("policy", "nla") ] "t.family" <> None);
      Alcotest.check_raises "kind clash"
        (Invalid_argument "Metrics: t.family re-registered as a different kind")
        (fun () -> ignore (Metrics.gauge ~labels:[ ("policy", "nla") ] "t.family")))

let test_reset_keeps_handles () =
  with_telemetry (fun () ->
      let c = Metrics.counter "t.reset" in
      Metrics.incr c;
      Metrics.reset ();
      check_float "zeroed" 0.0 (Metrics.value c);
      Metrics.incr c;
      check_float "handle still live" 1.0 (Metrics.value c))

let test_render_mentions_nonzero () =
  with_telemetry (fun () ->
      let c = Metrics.counter "t.render.hits" in
      Metrics.add c 3.0;
      let dump = Metrics.render () in
      let contains hay needle =
        let h = String.length hay and n = String.length needle in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "named" true (contains dump "t.render.hits");
      Alcotest.(check bool) "valued" true (contains dump " 3"))

(* Four domains hammering the same handles: every update must land.
   Sums are exact because counter increments are integral and histogram
   observations use one CAS-looped add per value. *)
let test_parallel_updates_lose_nothing () =
  with_telemetry (fun () ->
      let c = Metrics.counter "t.par.counter" in
      let g = Metrics.gauge "t.par.gauge" in
      let h = Metrics.histogram ~buckets:[| 10.0; 100.0 |] "t.par.hist" in
      let domains = 4 and per_domain = 25_000 in
      let worker () =
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Metrics.incr c;
              Metrics.add g 1.0;
              Metrics.observe h (float_of_int (i mod 3))
            done)
      in
      let spawned = List.init domains (fun _ -> worker ()) in
      List.iter Domain.join spawned;
      let total = domains * per_domain in
      check_float "no lost counter increments" (float_of_int total)
        (Metrics.value c);
      check_float "no lost gauge adds" (float_of_int total) (Metrics.value g);
      Alcotest.(check int) "no lost observations" total (Metrics.count h);
      let bucket_total =
        List.fold_left (fun acc (_, n) -> acc + n) 0 (Metrics.bucket_counts h)
      in
      Alcotest.(check int) "bucket counts consistent" total bucket_total)

(* Concurrent registration of one identity must yield a single shared
   cell, never two handles that split the updates. *)
let test_parallel_registration_single_handle () =
  with_telemetry (fun () ->
      let domains = 4 and per_domain = 5_000 in
      let worker () =
        Domain.spawn (fun () ->
            let c = Metrics.counter ~labels:[ ("d", "x") ] "t.par.register" in
            for _ = 1 to per_domain do
              Metrics.incr c
            done)
      in
      let spawned = List.init domains (fun _ -> worker ()) in
      List.iter Domain.join spawned;
      match Metrics.find ~labels:[ ("d", "x") ] "t.par.register" with
      | None -> Alcotest.fail "metric not registered"
      | Some c ->
        check_float "all domains hit one cell"
          (float_of_int (domains * per_domain))
          (Metrics.value c))

let prop_bucket_counts_sum =
  QCheck.Test.make ~count:100 ~name:"histogram bucket counts sum to observations"
    QCheck.(list (float_range (-10.0) 1e4))
    (fun xs ->
      with_telemetry (fun () ->
          let h = Metrics.histogram "t.prop.hist" in
          List.iter (Metrics.observe h) xs;
          let total =
            List.fold_left (fun acc (_, n) -> acc + n) 0 (Metrics.bucket_counts h)
          in
          total = List.length xs && Metrics.count h = List.length xs))

(* --- Trace ------------------------------------------------------------- *)

let test_span_nesting_depth () =
  with_telemetry (fun () ->
      let outer = Trace.span_begin ~time:10.0 "outer" in
      let inner = Trace.span_begin ~time:11.0 "inner" in
      Trace.instant ~time:11.5 ~attrs:[ ("k", "v") ] "tick";
      Trace.span_end ~time:12.0 inner;
      Trace.span_end ~time:13.0 outer;
      match Trace.events () with
      | [ b0; b1; i; e1; e0 ] ->
        Alcotest.(check (list int))
          "depths" [ 0; 1; 2; 1; 0 ]
          (List.map (fun (e : Trace.event) -> e.depth) [ b0; b1; i; e1; e0 ]);
        Alcotest.(check (list int))
          "seqs increase" [ 0; 1; 2; 3; 4 ]
          (List.map (fun (e : Trace.event) -> e.seq) [ b0; b1; i; e1; e0 ]);
        Alcotest.(check string) "end matches begin" b1.name e1.name;
        Alcotest.(check bool) "end keeps attrs" true (e0.attrs = b0.attrs)
      | evs -> Alcotest.failf "expected 5 events, got %d" (List.length evs))

let test_span_end_idempotent () =
  with_telemetry (fun () ->
      let s = Trace.span_begin ~time:1.0 "once" in
      Trace.span_end ~time:2.0 s;
      Trace.span_end ~time:3.0 s;
      Alcotest.(check int) "double end is a no-op" 2 (Trace.length ()))

let test_disabled_span_is_inert () =
  scrub ();
  let s = Trace.span_begin ~time:1.0 "ghost" in
  Runtime.enable ();
  Trace.span_end ~time:2.0 s;
  Alcotest.(check int) "no events at all" 0 (Trace.length ());
  scrub ()

let test_ring_eviction_keeps_seq () =
  with_telemetry (fun () ->
      Trace.set_capacity 4;
      Fun.protect
        ~finally:(fun () -> Trace.set_capacity 4096)
        (fun () ->
          for i = 0 to 6 do
            Trace.instant ~time:(float_of_int i) "e"
          done;
          Alcotest.(check int) "bounded" 4 (Trace.length ());
          match Trace.events () with
          | first :: _ ->
            Alcotest.(check int) "oldest seq shows truncation" 3 first.seq
          | [] -> Alcotest.fail "buffer empty"))

let test_trace_exporters () =
  with_telemetry (fun () ->
      Trace.instant ~time:1.5 ~attrs:[ ("node", "3") ] "probe";
      let jsonl = Trace.to_jsonl () in
      let j = Json.of_string (String.trim jsonl) in
      Alcotest.(check string) "name" "probe" Json.(to_str (member "name" j));
      Alcotest.(check string) "kind" "I" Json.(to_str (member "kind" j));
      check_float "time" 1.5 Json.(to_float (member "t" j));
      Alcotest.(check string)
        "attr" "3"
        Json.(to_str (member "node" (member "attrs" j)));
      let csv = Trace.to_csv () in
      match String.split_on_char '\n' csv with
      | header :: row :: _ ->
        Alcotest.(check string) "csv header" "seq,time,kind,depth,name,attrs" header;
        Alcotest.(check string) "csv row" "0,1.500000,I,0,probe,node=3" row
      | _ -> Alcotest.fail "csv too short")

(* Two monitor runs with identical seeds must produce byte-identical
   traces: every timestamp comes from the virtual clock. *)
let monitored_trace ~seed =
  let sim = Sim.create () in
  let cluster = Cluster.homogeneous ~cores:8 ~nodes_per_switch:[ 3; 3 ] () in
  let world = World.create ~cluster ~scenario:Scenario.normal ~seed in
  let rng = Rng.create (seed + 17) in
  let sys = System.start ~sim ~world ~rng ~until:900.0 () in
  Sim.run_until sim 900.0;
  ignore (System.snapshot sys ~time:(Sim.now sim));
  Trace.events ()

let test_trace_determinism_under_seed () =
  let run () =
    with_telemetry (fun () -> monitored_trace ~seed:42)
  in
  let first = run () in
  let second = run () in
  Alcotest.(check bool) "trace is non-trivial" true (List.length first > 10);
  Alcotest.(check bool) "identical event lists" true (first = second)

(* --- Audit ------------------------------------------------------------- *)

let decide_with_audit ~wait_threshold =
  let cluster = Cluster.homogeneous ~cores:8 ~nodes_per_switch:[ 3; 3 ] () in
  let world = World.create ~cluster ~scenario:Scenario.normal ~seed:5 in
  World.advance world ~now:1800.0;
  let snapshot = Snapshot.of_truth ~time:1800.0 ~world in
  let config = { Broker.default_config with Broker.wait_threshold } in
  let request = Request.make ~ppn:4 ~procs:8 () in
  ignore (Broker.decide ~config ~snapshot ~request ~rng:(Rng.create 3));
  match Audit.last () with
  | Some r -> r
  | None -> Alcotest.fail "Broker.decide recorded no audit entry"

let test_audit_roundtrip_real_decision () =
  with_telemetry (fun () ->
      let r = decide_with_audit ~wait_threshold:None in
      Alcotest.(check bool) "nodes recorded" true (r.Audit.nodes <> []);
      Alcotest.(check bool) "candidates recorded" true (r.Audit.candidates <> []);
      Alcotest.(check bool) "a winner" true (r.Audit.chosen <> None);
      (match r.Audit.decision with
      | Audit.Allocated entries ->
        Alcotest.(check int) "procs placed" 8
          (List.fold_left (fun acc (_, p) -> acc + p) 0 entries)
      | _ -> Alcotest.fail "expected an Allocated decision");
      let back = Audit.of_json (Audit.to_json r) in
      Alcotest.(check bool) "exact round-trip" true (back = r))

let test_audit_wait_roundtrip () =
  with_telemetry (fun () ->
      let r = decide_with_audit ~wait_threshold:(Some 0.0) in
      (match r.Audit.decision with
      | Audit.Wait { threshold; _ } -> check_float "threshold" 0.0 threshold
      | _ -> Alcotest.fail "expected a Wait decision");
      let back = Audit.of_json (Audit.to_json r) in
      Alcotest.(check bool) "round-trip" true (back = r))

let test_audit_ring_and_jsonl () =
  with_telemetry (fun () ->
      Audit.set_capacity 3;
      Fun.protect
        ~finally:(fun () -> Audit.set_capacity 256)
        (fun () ->
          for i = 1 to 5 do
            Audit.record
              {
                Audit.time = float_of_int i;
                policy = "test";
                procs = i;
                ppn = None;
                alpha = 0.3;
                beta = 0.7;
                staleness_s = 0.0;
                usable = 0;
                stale_excluded = [];
                nodes = [];
                candidates = [];
                chosen = None;
                decision = Audit.Rejected "synthetic";
              }
          done;
          let kept = Audit.recent () in
          Alcotest.(check (list int))
            "newest three, oldest first" [ 3; 4; 5 ]
            (List.map (fun (r : Audit.t) -> r.Audit.procs) kept);
          let back = Audit.of_jsonl (Audit.to_jsonl kept) in
          Alcotest.(check bool) "jsonl round-trip" true (back = kept)))

let arbitrary_audit : Audit.t QCheck.arbitrary =
  let open QCheck.Gen in
  let fin = float_range (-1e6) 1e6 in
  let node_stat =
    map
      (fun (node, cl, pc, load_1m) -> { Audit.node; cl; pc; load_1m })
      (quad (int_bound 63) fin (int_bound 16) fin)
  in
  let step =
    map
      (fun (node, cost, procs) -> { Audit.node; cost; procs })
      (triple (int_bound 63) fin (int_bound 8))
  in
  let candidate =
    map
      (fun (start, steps, (compute_cost, network_cost, total)) ->
        { Audit.start; steps; compute_cost; network_cost; total })
      (triple (int_bound 63) (list_size (int_range 1 4) step)
         (triple fin fin fin))
  in
  let decision =
    oneof
      [
        map
          (fun entries -> Audit.Allocated entries)
          (list_size (int_range 0 4) (pair (int_bound 63) (int_range 1 8)));
        map
          (fun (m, t) -> Audit.Wait { mean_load_per_core = m; threshold = t })
          (pair fin fin);
        map (fun s -> Audit.Rejected s) (string_size ~gen:printable (int_bound 20));
      ]
  in
  let record =
    map
      (fun ((time, policy, procs, ppn),
            ((alpha, beta, staleness_s, usable), stale_excluded),
            (nodes, candidates, chosen, decision)) ->
        {
          Audit.time;
          policy;
          procs;
          ppn;
          alpha;
          beta;
          staleness_s;
          usable;
          stale_excluded;
          nodes;
          candidates;
          chosen;
          decision;
        })
      (triple
         (quad fin
            (string_size ~gen:printable (int_bound 12))
            (int_bound 512)
            (opt (int_range 1 16)))
         (pair
            (quad fin fin fin (int_bound 64))
            (list_size (int_bound 4) (int_bound 63)))
         (quad
            (list_size (int_bound 5) node_stat)
            (list_size (int_bound 3) candidate)
            (opt (int_bound 63))
            decision))
  in
  QCheck.make ~print:Audit.to_json record

let prop_audit_json_roundtrip =
  QCheck.Test.make ~count:100 ~name:"audit records round-trip through JSON"
    arbitrary_audit (fun r -> Audit.of_json (Audit.to_json r) = r)

(* --- JSON codec -------------------------------------------------------- *)

let test_json_escapes_and_nesting () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd\tе");
        ("arr", Json.Arr [ Json.Null; Json.Bool true; Json.Num 3.0 ]);
        ("nested", Json.Obj [ ("x", Json.Num (-0.125)) ]);
      ]
  in
  Alcotest.(check bool) "round-trip" true (Json.of_string (Json.to_string v) = v)

let test_json_nonfinite_is_null () =
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.Num nan));
  Alcotest.(check string)
    "inf in array" "[null]"
    (Json.to_string (Json.Arr [ Json.Num infinity ]))

let prop_json_float_roundtrip =
  QCheck.Test.make ~count:200 ~name:"finite floats round-trip exactly"
    QCheck.float (fun f ->
      QCheck.assume (Float.is_finite f);
      match Json.of_string (Json.to_string (Json.Num f)) with
      | Json.Num f' -> Float.equal f f' || (f = 0.0 && f' = 0.0)
      | _ -> false)

(* --- Prometheus exposition -------------------------------------------- *)

module Prometheus = Telemetry.Prometheus

(* The registry keeps handles registered across resets, so exposition
   tests render hand-filtered views rather than the whole snapshot. *)
let prom_views prefix =
  List.filter
    (fun (v : Metrics.view) ->
      String.length v.Metrics.name >= String.length prefix
      && String.sub v.Metrics.name 0 (String.length prefix) = prefix)
    (Metrics.snapshot ~consistent:true ())

let test_prometheus_golden () =
  with_telemetry (fun () ->
      let c = Metrics.counter "t.prom.hits" in
      Metrics.add c 3.0;
      let g = Metrics.gauge ~labels:[ ("policy", "net-aware") ] "t.prom.load" in
      Metrics.set g 2.5;
      let h = Metrics.histogram ~buckets:[| 1.0; 10.0 |] "t.prom.wait" in
      List.iter (Metrics.observe h) [ 0.5; 5.0; 50.0 ];
      let golden =
        "# TYPE t_prom_hits counter\n\
         t_prom_hits 3\n\
         # TYPE t_prom_load gauge\n\
         t_prom_load{policy=\"net-aware\"} 2.5\n\
         # TYPE t_prom_wait histogram\n\
         t_prom_wait_bucket{le=\"1\"} 1\n\
         t_prom_wait_bucket{le=\"10\"} 2\n\
         t_prom_wait_bucket{le=\"+Inf\"} 3\n\
         t_prom_wait_sum 55.5\n\
         t_prom_wait_count 3\n"
      in
      Alcotest.(check string)
        "exposition matches golden" golden
        (Prometheus.render (prom_views "t.prom.")))

let test_prometheus_parse_roundtrip () =
  with_telemetry (fun () ->
      let c = Metrics.counter ~labels:[ ("app", "minimd") ] "t.promrt.runs" in
      Metrics.add c 7.0;
      let h = Metrics.histogram ~buckets:[| 0.5 |] "t.promrt.wait" in
      Metrics.observe h 0.25;
      let samples = Prometheus.parse (Prometheus.render (prom_views "t.promrt.")) in
      Alcotest.(check int) "sample count" 5 (List.length samples)
        (* 1 counter + 2 buckets + sum + count *);
      let find name =
        List.find (fun s -> s.Prometheus.sample_name = name) samples
      in
      check_float "counter value" 7.0 (find "t_promrt_runs").Prometheus.sample_value;
      Alcotest.(check (list (pair string string)))
        "counter labels" [ ("app", "minimd") ]
        (find "t_promrt_runs").Prometheus.sample_labels;
      check_float "inf bucket cumulative" 1.0
        (List.find
           (fun s ->
             s.Prometheus.sample_name = "t_promrt_wait_bucket"
             && s.Prometheus.sample_labels = [ ("le", "+Inf") ])
           samples)
          .Prometheus.sample_value)

let test_prometheus_label_escaping () =
  with_telemetry (fun () ->
      let tricky = "a\\b\"c\nd" in
      let g = Metrics.gauge ~labels:[ ("path", tricky) ] "t.promesc.g" in
      Metrics.set g 1.0;
      match Prometheus.parse (Prometheus.render (prom_views "t.promesc.")) with
      | [ s ] ->
        Alcotest.(check (list (pair string string)))
          "escaped label round-trips" [ ("path", tricky) ]
          s.Prometheus.sample_labels
      | samples -> Alcotest.failf "expected 1 sample, got %d" (List.length samples))

let test_prometheus_name_sanitization () =
  Alcotest.(check string) "dots" "sched_dispatch_wait_s"
    (Prometheus.metric_name "sched.dispatch_wait_s");
  Alcotest.(check string) "leading digit" "_5xx_total"
    (Prometheus.metric_name "5xx-total")

let test_consistent_snapshot_quiescent () =
  with_telemetry (fun () ->
      let h = Metrics.histogram ~buckets:[| 1.0 |] "t.consist.h" in
      List.iter (Metrics.observe h) [ 0.5; 2.0 ];
      let plain = prom_views "t.consist." in
      Runtime.enable ();
      let consistent =
        List.filter
          (fun (v : Metrics.view) ->
            String.length v.Metrics.name >= 10
            && String.sub v.Metrics.name 0 10 = "t.consist.")
          (Metrics.snapshot ~consistent:true ())
      in
      Alcotest.(check bool) "quiescent views agree" true (plain = consistent);
      List.iter
        (fun (v : Metrics.view) ->
          let bucket_total =
            List.fold_left (fun acc (_, n) -> acc + n) 0 v.Metrics.buckets
          in
          Alcotest.(check int) "buckets sum to count" v.Metrics.count
            bucket_total)
        consistent)

(* --- Chrome trace_event export ----------------------------------------- *)

module Trace_event = Telemetry.Trace_event

let test_trace_event_export () =
  with_telemetry (fun () ->
      let s = Trace.span_begin ~time:1.0 ~attrs:[ ("job", "j1") ] "sched.job" in
      Trace.instant ~time:1.5 "alloc.pick";
      Trace.span_end ~time:2.0 s;
      let str field j = Json.(to_str (member field j)) in
      let num field j = Json.(to_float (member field j)) in
      match Json.of_string (String.trim (Trace_event.export_buffer ())) with
      | Json.Arr [ m1; m2; b; i; e ] ->
        (* Two components, metadata lanes first. *)
        Alcotest.(check string) "metadata phase" "M" (str "ph" m1);
        Alcotest.(check string) "lane 1 names sched" "sched"
          (str "name" (Json.member "args" m1));
        Alcotest.(check string) "lane 2 names alloc" "alloc"
          (str "name" (Json.member "args" m2));
        (* Span begin. *)
        Alcotest.(check string) "begin name" "sched.job" (str "name" b);
        Alcotest.(check string) "begin phase" "B" (str "ph" b);
        check_float "ts is microseconds" 1e6 (num "ts" b);
        Alcotest.(check int) "pid" Trace_event.pid
          (int_of_float (num "pid" b));
        Alcotest.(check int) "sched lane" 1 (int_of_float (num "tid" b));
        Alcotest.(check string) "attr carried" "j1"
          (str "job" (Json.member "args" b));
        (* Instant. *)
        Alcotest.(check string) "instant phase" "i" (str "ph" i);
        Alcotest.(check string) "instant scope" "t" (str "s" i);
        Alcotest.(check int) "alloc lane" 2 (int_of_float (num "tid" i));
        check_float "instant ts" 1.5e6 (num "ts" i);
        (* Span end. *)
        Alcotest.(check string) "end phase" "E" (str "ph" e);
        check_float "end ts" 2e6 (num "ts" e)
      | Json.Arr entries ->
        Alcotest.failf "expected 5 records, got %d" (List.length entries)
      | _ -> Alcotest.fail "export is not a JSON array")

let test_trace_event_lane_assignment () =
  with_telemetry (fun () ->
      Trace.instant ~time:1.0 "mon.probe";
      Trace.instant ~time:2.0 "sched.tick";
      Trace.instant ~time:3.0 "mon.sweep";
      Alcotest.(check (list string))
        "components in first-appearance order" [ "mon"; "sched" ]
        (Trace_event.components (Trace.events ())))

(* --- Spill-to-disk sink ------------------------------------------------ *)

module Spill = Telemetry.Spill

let fresh_spill_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rm-spill-test-%d-%d" !counter (Hashtbl.hash Sys.argv))

let rm_rf_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_spill_dir f =
  let dir = fresh_spill_dir () in
  Fun.protect ~finally:(fun () -> rm_rf_dir dir) (fun () -> f dir)

let test_spill_mirrors_ring () =
  with_telemetry (fun () ->
      with_spill_dir (fun dir ->
          let spill = Spill.create ~events_per_segment:8 ~dir () in
          Spill.install spill;
          Fun.protect
            ~finally:(fun () -> Spill.uninstall ())
            (fun () ->
              for i = 0 to 19 do
                Trace.instant ~time:(float_of_int i)
                  ~attrs:[ ("i", string_of_int i) ]
                  "spill.e"
              done;
              Spill.close spill;
              Alcotest.(check int) "three segments" 3
                (List.length (Spill.segments spill));
              Alcotest.(check bool) "disk equals ring" true
                (Spill.read_dir dir = Trace.events ()))))

let synthetic_event i =
  {
    Trace.seq = i;
    time = float_of_int i *. 0.5;
    name = "syn.e";
    kind = Trace.Instant;
    depth = 0;
    attrs = [ ("i", string_of_int i) ];
  }

let test_spill_retention () =
  with_spill_dir (fun dir ->
      let spill = Spill.create ~events_per_segment:4 ~max_segments:2 ~dir () in
      for i = 0 to 19 do
        Spill.append spill (synthetic_event i)
      done;
      Spill.close spill;
      Alcotest.(check bool) "at most 2 segments" true
        (List.length (Spill.segments spill) <= 2);
      Alcotest.(check (list int))
        "newest events survive"
        [ 12; 13; 14; 15; 16; 17; 18; 19 ]
        (List.map (fun (e : Trace.event) -> e.Trace.seq) (Spill.read_dir dir));
      match Spill.append spill (synthetic_event 20) with
      | () -> Alcotest.fail "append after close should raise"
      | exception Invalid_argument _ -> ())

(* Regression: [create] used to swallow the mkdir failure and crash a
   moment later opening the first segment, with an error that never
   named the spill directory. A directory path nested under a regular
   FILE fails with ENOTDIR for any uid (unlike permission bits, which
   root ignores), so it exercises the same path everywhere. *)
let test_spill_uncreatable_dir () =
  with_spill_dir (fun base ->
      Sys.mkdir base 0o755;
      let squatter = Filename.concat base "squatter" in
      let oc = open_out squatter in
      output_string oc "not a directory";
      close_out oc;
      Fun.protect
        ~finally:(fun () -> Sys.remove squatter)
        (fun () ->
          let dir = Filename.concat squatter "spill" in
          let contains hay needle =
            let h = String.length hay and n = String.length needle in
            let rec go i =
              i + n <= h && (String.sub hay i n = needle || go (i + 1))
            in
            go 0
          in
          (match Spill.create ~dir () with
          | _ -> Alcotest.fail "expected Sys_error for uncreatable dir"
          | exception Sys_error msg ->
            (* The message pins the path component that is actually in
               the way (the file posing as a directory). *)
            Alcotest.(check bool)
              (Printf.sprintf "error %S names the spill dir" msg)
              true
              (contains msg "cannot create spill dir" && contains msg squatter));
          (* A path component that exists but is a file fails the same
             way, before any mkdir is attempted. *)
          match Spill.create ~dir:squatter () with
          | _ -> Alcotest.fail "expected Sys_error for file-as-dir"
          | exception Sys_error msg ->
            Alcotest.(check bool)
              (Printf.sprintf "error %S says not a directory" msg)
              true
              (contains msg "not a directory" && contains msg squatter)))

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Satellite: [Spill.mkdir_p] is the named-path recursive mkdir other
   sinks reuse (bench --csv nests output under DIR). *)
let test_spill_mkdir_p_nested () =
  let base = fresh_spill_dir () in
  let nested = Filename.concat (Filename.concat base "a") "b" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun d -> if Sys.file_exists d then Sys.rmdir d)
        [ nested; Filename.concat base "a"; base ])
    (fun () ->
      Spill.mkdir_p nested;
      Alcotest.(check bool) "nested path created" true
        (Sys.is_directory nested);
      (* idempotent on an existing tree *)
      Spill.mkdir_p nested;
      Alcotest.(check bool) "still a directory" true (Sys.is_directory nested));
  (* a regular file on the path raises a Sys_error naming it *)
  let squat_base = fresh_spill_dir () in
  Sys.mkdir squat_base 0o755;
  let squatter = Filename.concat squat_base "file" in
  let oc = open_out squatter in
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove squatter;
      Sys.rmdir squat_base)
    (fun () ->
      match Spill.mkdir_p (Filename.concat squatter "deeper") with
      | () -> Alcotest.fail "expected Sys_error through a squatting file"
      | exception Sys_error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error %S names the blocked path" msg)
          true (contains msg squatter))

(* Doc-drift lint (ISSUE 8): every dotted metric name registered by the
   libraries must appear in docs/OBSERVABILITY.md, so dashboard
   counters cannot silently go undocumented. Test-local metrics use the
   "t." prefix and bench-binary ones "bench."; both are exempt. The
   registry only holds names whose registration sites have executed,
   so the lint's coverage grows with the suite — which is the point:
   anything a test exercises must be documented. *)
let test_metric_names_documented () =
  let doc =
    let rec find dir depth =
      let candidate =
        Filename.concat dir (Filename.concat "docs" "OBSERVABILITY.md")
      in
      if Sys.file_exists candidate then Some candidate
      else if depth = 0 then None
      else find (Filename.concat dir Filename.parent_dir_name) (depth - 1)
    in
    match find Filename.current_dir_name 4 with
    | Some path ->
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    | None -> Alcotest.fail "docs/OBSERVABILITY.md not found from test cwd"
  in
  let exempt name =
    match String.index_opt name '.' with
    | None -> true
    | Some i -> List.mem (String.sub name 0 i) [ "t"; "test"; "bench"; "syn" ]
  in
  let names =
    List.sort_uniq compare
      (List.filter_map
         (fun (v : Metrics.view) ->
           if exempt v.Metrics.name then None else Some v.Metrics.name)
         (Metrics.snapshot ()))
  in
  let undocumented = List.filter (fun n -> not (contains doc n)) names in
  Alcotest.(check (list string))
    (Printf.sprintf "all %d registered metric names documented in \
                     docs/OBSERVABILITY.md" (List.length names))
    [] undocumented

let arbitrary_trace_event : Trace.event QCheck.arbitrary =
  let open QCheck.Gen in
  let printable_str = string_size ~gen:printable (int_bound 12) in
  let gen =
    map
      (fun ((seq, time, name), (kind, depth, attrs)) ->
        { Trace.seq; time; name; kind; depth; attrs })
      (pair
         (triple (int_bound 100_000) (float_range (-1e6) 1e6) printable_str)
         (triple
            (oneofl [ Trace.Span_begin; Trace.Span_end; Trace.Instant ])
            (int_bound 16)
            (list_size (int_bound 3) (pair printable_str printable_str))))
  in
  QCheck.make ~print:(fun e -> Json.to_string (Trace.event_to_json e)) gen

let prop_spill_roundtrip =
  QCheck.Test.make ~count:50 ~name:"spill segments round-trip any event list"
    QCheck.(list_of_size (QCheck.Gen.int_bound 40) arbitrary_trace_event)
    (fun events ->
      with_spill_dir (fun dir ->
          let spill = Spill.create ~events_per_segment:7 ~dir () in
          List.iter (Spill.append spill) events;
          Spill.close spill;
          Spill.read_dir dir = events))

(* ----------------------------------------------------------------------- *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "telemetry.metrics",
      [
        Alcotest.test_case "disabled ops are no-ops" `Quick
          test_disabled_ops_are_noops;
        Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
        Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
        Alcotest.test_case "histogram semantics" `Quick test_histogram_semantics;
        Alcotest.test_case "label families and identity" `Quick
          test_label_families_and_identity;
        Alcotest.test_case "reset keeps handles" `Quick test_reset_keeps_handles;
        Alcotest.test_case "render mentions non-zero metrics" `Quick
          test_render_mentions_nonzero;
        Alcotest.test_case "parallel updates lose nothing" `Quick
          test_parallel_updates_lose_nothing;
        Alcotest.test_case "parallel registration shares one handle" `Quick
          test_parallel_registration_single_handle;
      ]
      @ qsuite [ prop_bucket_counts_sum ] );
    ( "telemetry.trace",
      [
        Alcotest.test_case "span nesting depth" `Quick test_span_nesting_depth;
        Alcotest.test_case "span end is idempotent" `Quick
          test_span_end_idempotent;
        Alcotest.test_case "disabled span is inert" `Quick
          test_disabled_span_is_inert;
        Alcotest.test_case "ring eviction keeps global seq" `Quick
          test_ring_eviction_keeps_seq;
        Alcotest.test_case "jsonl and csv exporters" `Quick test_trace_exporters;
        Alcotest.test_case "deterministic under a fixed seed" `Quick
          test_trace_determinism_under_seed;
      ] );
    ( "telemetry.audit",
      [
        Alcotest.test_case "round-trips a real decision" `Quick
          test_audit_roundtrip_real_decision;
        Alcotest.test_case "round-trips a wait decision" `Quick
          test_audit_wait_roundtrip;
        Alcotest.test_case "bounded ring and jsonl" `Quick
          test_audit_ring_and_jsonl;
      ]
      @ qsuite [ prop_audit_json_roundtrip ] );
    ( "telemetry.json",
      [
        Alcotest.test_case "escapes and nesting" `Quick
          test_json_escapes_and_nesting;
        Alcotest.test_case "non-finite numbers become null" `Quick
          test_json_nonfinite_is_null;
      ]
      @ qsuite [ prop_json_float_roundtrip ] );
    ( "telemetry.prometheus",
      [
        Alcotest.test_case "golden exposition" `Quick test_prometheus_golden;
        Alcotest.test_case "parse round-trip" `Quick
          test_prometheus_parse_roundtrip;
        Alcotest.test_case "label escaping" `Quick test_prometheus_label_escaping;
        Alcotest.test_case "name sanitization" `Quick
          test_prometheus_name_sanitization;
        Alcotest.test_case "consistent snapshot" `Quick
          test_consistent_snapshot_quiescent;
      ] );
    ( "telemetry.trace_event",
      [
        Alcotest.test_case "chrome export fields" `Quick test_trace_event_export;
        Alcotest.test_case "lane assignment" `Quick
          test_trace_event_lane_assignment;
      ] );
    ( "telemetry.spill",
      [
        Alcotest.test_case "mirrors the ring" `Quick test_spill_mirrors_ring;
        Alcotest.test_case "newest-N retention" `Quick test_spill_retention;
        Alcotest.test_case "uncreatable dir named in error" `Quick
          test_spill_uncreatable_dir;
        Alcotest.test_case "mkdir_p nests and errors by name" `Quick
          test_spill_mkdir_p_nested;
      ]
      @ qsuite [ prop_spill_roundtrip ] );
    ( "telemetry.doclint",
      [
        Alcotest.test_case "registered metric names documented" `Quick
          test_metric_names_documented;
      ] );
  ]

(* Tests for rm_workload: OU processes, spike trains, node models, flow
   generation, world. *)

module Rng = Rm_stats.Rng
module Ou = Rm_workload.Ou_process
module Spike = Rm_workload.Spike_train
module Node_model = Rm_workload.Node_model
module Flow_gen = Rm_workload.Flow_gen
module Scenario = Rm_workload.Scenario
module World = Rm_workload.World
module Cluster = Rm_cluster.Cluster
module Flow = Rm_netsim.Flow

let small_cluster () = Cluster.homogeneous ~cores:8 ~nodes_per_switch:[ 3; 3 ] ()

(* --- Ou_process ------------------------------------------------------------ *)

let test_ou_clamps () =
  let g = Rng.create 1 in
  let p = Ou.create ~rng:g ~mu:0.5 ~tau:100.0 ~sigma:5.0 ~lo:0.0 ~hi:1.0 () in
  for _ = 1 to 1000 do
    let v = Ou.step p ~dt:10.0 () in
    Alcotest.(check bool) "clamped" true (v >= 0.0 && v <= 1.0)
  done

let test_ou_reverts_to_mean () =
  let g = Rng.create 2 in
  let p = Ou.create ~rng:g ~mu:10.0 ~tau:50.0 ~sigma:0.001 ~init:0.0 () in
  (* After many time constants with tiny noise, value is near mu. *)
  ignore (Ou.step p ~dt:5000.0 ());
  Alcotest.(check bool) "near mu" true (Float.abs (Ou.value p -. 10.0) < 0.1)

let test_ou_zero_dt_no_change () =
  let g = Rng.create 3 in
  let p = Ou.create ~rng:g ~mu:1.0 ~tau:10.0 ~sigma:1.0 ~init:0.3 () in
  let before = Ou.value p in
  ignore (Ou.step p ~dt:0.0 ());
  Alcotest.(check (float 1e-12)) "unchanged" before (Ou.value p)

let test_ou_mean_override () =
  let g = Rng.create 4 in
  let p = Ou.create ~rng:g ~mu:0.0 ~tau:10.0 ~sigma:0.0001 ~init:0.0 () in
  ignore (Ou.step p ~dt:1000.0 ~mu:5.0 ());
  Alcotest.(check bool) "tracked override" true (Float.abs (Ou.value p -. 5.0) < 0.1)

let test_ou_stationary_sd () =
  let g = Rng.create 5 in
  let p = Ou.create ~rng:g ~mu:0.0 ~tau:10.0 ~sigma:2.0 ~init:0.0 () in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Ou.step p ~dt:30.0 ()) in
  (* dt >> tau: samples are nearly independent N(0, sigma). *)
  let sd = Rm_stats.Descriptive.stddev xs in
  Alcotest.(check bool) "stationary sd ~2" true (Float.abs (sd -. 2.0) < 0.15)

(* --- Spike_train ----------------------------------------------------------- *)

let test_spike_zero_rate () =
  let g = Rng.create 6 in
  let s = Spike.create ~rng:g ~rate_per_s:0.0 ~magnitude:(fun _ -> 1.0)
      ~mean_duration_s:10.0 () in
  Alcotest.(check (float 1e-9)) "always zero" 0.0 (Spike.advance s ~now:1e6);
  Alcotest.(check int) "no sessions" 0 (Spike.active s)

let test_spike_arrivals_and_expiry () =
  let g = Rng.create 7 in
  let s = Spike.create ~rng:g ~rate_per_s:0.1 ~magnitude:(fun _ -> 2.0)
      ~mean_duration_s:100.0 () in
  let v = Spike.advance s ~now:1000.0 in
  Alcotest.(check bool) "some spikes arrived" true (v > 0.0);
  (* Far in the future every session has expired (rate still active, but
     check value is sum of live magnitudes only). *)
  let v2 = Spike.advance s ~now:1001.0 in
  Alcotest.(check bool) "value is multiple of magnitude" true
    (Float.rem v2 2.0 < 1e-9)

let test_spike_monotonic_time () =
  let g = Rng.create 8 in
  let s = Spike.create ~rng:g ~rate_per_s:0.1 ~magnitude:(fun _ -> 1.0)
      ~mean_duration_s:10.0 () in
  ignore (Spike.advance s ~now:100.0);
  Alcotest.check_raises "backwards"
    (Invalid_argument "Spike_train.advance: time went backwards") (fun () ->
      ignore (Spike.advance s ~now:50.0))

let test_spike_long_horizon_mean () =
  (* M/G/inf: mean active sessions = rate * mean duration. *)
  let g = Rng.create 9 in
  let s = Spike.create ~rng:g ~rate_per_s:0.01 ~magnitude:(fun _ -> 1.0)
      ~mean_duration_s:200.0 () in
  let samples = ref [] in
  for i = 1 to 3000 do
    ignore (Spike.advance s ~now:(float_of_int i *. 60.0));
    samples := float_of_int (Spike.active s) :: !samples
  done;
  let mean = Rm_stats.Descriptive.mean_list !samples in
  Alcotest.(check bool) "mean active ~2" true (Float.abs (mean -. 2.0) < 0.4)

(* --- Node_model ------------------------------------------------------------- *)

let profile : Node_model.profile =
  {
    load_mu = 0.5;
    load_tau = 600.0;
    load_sigma = 0.2;
    spike_rate_per_s = 1e-4;
    spike_magnitude_lo = 0.5;
    spike_magnitude_hi = 3.0;
    spike_mean_duration_s = 600.0;
    diurnal_amplitude = 0.5;
    diurnal_phase_s = 0.0;
    util_base_pct = 20.0;
    util_sigma_pct = 4.0;
    mem_used_frac_mu = 0.25;
    users_mu = 1.5;
  }

let node () =
  Rm_cluster.Node.make ~id:0 ~hostname:"n1" ~cores:12 ~freq_ghz:3.0
    ~mem_gb:16.0 ~switch:0

let test_node_model_ranges () =
  let m = Node_model.create ~rng:(Rng.create 10) ~node:(node ()) ~profile in
  for i = 1 to 2000 do
    Node_model.advance m ~now:(float_of_int i *. 30.0);
    Alcotest.(check bool) "load >= 0" true (Node_model.cpu_load m >= 0.0);
    let u = Node_model.cpu_util_pct m in
    Alcotest.(check bool) "util in [0,100]" true (u >= 0.0 && u <= 100.0);
    let mem = Node_model.mem_used_gb m in
    Alcotest.(check bool) "mem within node" true (mem >= 0.0 && mem <= 16.0);
    Alcotest.(check bool) "users >= 0" true (Node_model.users m >= 0)
  done

let test_node_model_util_couples_to_load () =
  (* A model with huge load should show higher utilization than idle. *)
  let loaded = { profile with load_mu = 20.0; util_base_pct = 10.0 } in
  let idle = { profile with load_mu = 0.0; load_sigma = 0.0; util_base_pct = 10.0;
               spike_rate_per_s = 0.0 } in
  let ml = Node_model.create ~rng:(Rng.create 11) ~node:(node ()) ~profile:loaded in
  let mi = Node_model.create ~rng:(Rng.create 11) ~node:(node ()) ~profile:idle in
  Node_model.advance ml ~now:10_000.0;
  Node_model.advance mi ~now:10_000.0;
  Alcotest.(check bool) "loaded util > idle util" true
    (Node_model.cpu_util_pct ml > Node_model.cpu_util_pct mi)

(* --- Flow_gen ----------------------------------------------------------------- *)

let test_flow_gen_population () =
  let params = { Flow_gen.default with arrival_rate_per_s = 0.5 } in
  let fg = Flow_gen.create ~rng:(Rng.create 12) ~node_count:6 ~params in
  Flow_gen.advance fg ~now:600.0 ~switch_of_node:(fun n -> n / 3);
  Alcotest.(check bool) "population present" true (Flow_gen.active_count fg > 0);
  List.iter
    (fun (f : Flow.t) ->
      Alcotest.(check bool) "src valid" true (f.Flow.src >= 0 && f.Flow.src < 6);
      Alcotest.(check bool) "demand positive" true (f.Flow.demand_mb_s > 0.0);
      Alcotest.(check bool) "demand capped" true
        (f.Flow.demand_mb_s <= params.Flow_gen.demand_cap_mb_s))
    (Flow_gen.active_flows fg)

let test_flow_gen_hotspot_bias () =
  let params =
    { Flow_gen.default with
      arrival_rate_per_s = 1.0;
      hotspot = Some (1, 0.9);
      p_external = 1.0 }
  in
  let fg = Flow_gen.create ~rng:(Rng.create 13) ~node_count:10 ~params in
  Flow_gen.advance fg ~now:2000.0 ~switch_of_node:(fun n -> n / 5);
  let flows = Flow_gen.active_flows fg in
  let on_hotspot =
    List.length (List.filter (fun (f : Flow.t) -> f.Flow.src >= 5) flows)
  in
  Alcotest.(check bool) "most sources on hotspot switch" true
    (float_of_int on_hotspot > 0.6 *. float_of_int (List.length flows))

let test_flow_gen_turnover () =
  let params =
    { Flow_gen.default with arrival_rate_per_s = 0.5; p_elephant = 0.0;
      short_mean_duration_s = 10.0 }
  in
  let fg = Flow_gen.create ~rng:(Rng.create 14) ~node_count:4 ~params in
  Flow_gen.advance fg ~now:1000.0 ~switch_of_node:(fun _ -> 0);
  let a = Flow_gen.active_flows fg in
  Flow_gen.advance fg ~now:2000.0 ~switch_of_node:(fun _ -> 0);
  let b = Flow_gen.active_flows fg in
  (* Short flows: populations 1000 s apart share nothing. *)
  let ids fs = List.map (fun (f : Flow.t) -> f.Flow.id) fs in
  List.iter
    (fun id -> Alcotest.(check bool) "no survivor" false (List.mem id (ids b)))
    (ids a)

(* --- Scenario -------------------------------------------------------------------- *)

let test_scenario_presets_distinct () =
  (* Weekend must be quieter than nightly in traffic, nightly quieter
     than busy in CPU load. *)
  let mean_of scenario f =
    let w = World.create ~cluster:(small_cluster ()) ~scenario ~seed:42 in
    World.advance w ~now:7200.0;
    Rm_stats.Descriptive.mean_list (List.init 6 (fun n -> f w n))
  in
  let load s = mean_of s (fun w n -> World.cpu_load w ~node:n) in
  Alcotest.(check bool) "weekend < busy load" true
    (load Scenario.weekend < load Scenario.busy);
  Alcotest.(check bool) "nightly < busy load" true
    (load Scenario.nightly < load Scenario.busy)

let test_scenario_lookup () =
  Alcotest.(check bool) "normal" true (Scenario.by_name "normal" <> None);
  Alcotest.(check bool) "hotspot2" true (Scenario.by_name "hotspot2" <> None);
  Alcotest.(check bool) "unknown" true (Scenario.by_name "nope" = None);
  List.iter
    (fun n -> Alcotest.(check bool) n true (Scenario.by_name n <> None))
    Scenario.all_names

let test_scenario_hotspot_family () =
  (* "hotspot<N>" parses for any N; the switch only gets range-checked
     against a concrete topology at World.create time. *)
  (match Scenario.by_name "hotspot7" with
  | Some sc -> (
    Alcotest.(check string) "name carries the index" "hotspot7" sc.Scenario.name;
    match sc.Scenario.flow_params.Rm_workload.Flow_gen.hotspot with
    | Some (switch, _) -> Alcotest.(check int) "switch 7" 7 switch
    | None -> Alcotest.fail "hotspot scenario without a hotspot")
  | None -> Alcotest.fail "hotspot7 did not parse");
  List.iter
    (fun bad ->
      Alcotest.(check bool) (bad ^ " rejected") true (Scenario.by_name bad = None))
    [ "hotspot"; "hotspotx"; "hotspot-1"; "hotspot1.5"; "Hotspot1" ]

let test_scenario_hotspot_out_of_range () =
  (* small_cluster has 2 switches; asking for switch 9 must fail loudly
     at world construction, not silently generate no traffic. *)
  (match Scenario.by_name "hotspot9" with
  | Some sc -> (
    match World.create ~cluster:(small_cluster ()) ~scenario:sc ~seed:1 with
    | exception Invalid_argument msg ->
      Alcotest.(check bool) "message names the switch" true
        (let needle = "switch 9" in
         let h = String.length msg and n = String.length needle in
         let rec go i = i + n <= h && (String.sub msg i n = needle || go (i + 1)) in
         go 0)
    | _ -> Alcotest.fail "out-of-range hotspot accepted")
  | None -> Alcotest.fail "hotspot9 did not parse");
  (* In-range indices are fine. *)
  match Scenario.by_name "hotspot1" with
  | Some sc ->
    ignore (World.create ~cluster:(small_cluster ()) ~scenario:sc ~seed:1)
  | None -> Alcotest.fail "hotspot1 did not parse"

(* --- World ---------------------------------------------------------------------- *)

let test_world_determinism () =
  let mk () =
    let w = World.create ~cluster:(small_cluster ()) ~scenario:Scenario.normal ~seed:77 in
    World.advance w ~now:3600.0;
    List.init 6 (fun n -> World.cpu_load w ~node:n)
  in
  let a = mk () and b = mk () in
  List.iter2 (fun x y -> Alcotest.(check (float 1e-12)) "same" x y) a b

let test_world_seed_changes_world () =
  let w1 = World.create ~cluster:(small_cluster ()) ~scenario:Scenario.normal ~seed:1 in
  let w2 = World.create ~cluster:(small_cluster ()) ~scenario:Scenario.normal ~seed:2 in
  World.advance w1 ~now:3600.0;
  World.advance w2 ~now:3600.0;
  let l1 = List.init 6 (fun n -> World.cpu_load w1 ~node:n) in
  let l2 = List.init 6 (fun n -> World.cpu_load w2 ~node:n) in
  Alcotest.(check bool) "different" true (l1 <> l2)

let test_world_advance_lenient () =
  let w = World.create ~cluster:(small_cluster ()) ~scenario:Scenario.normal ~seed:3 in
  World.advance w ~now:100.0;
  let before = World.cpu_load w ~node:0 in
  World.advance w ~now:50.0;
  (* no-op *)
  Alcotest.(check (float 1e-12)) "no change" before (World.cpu_load w ~node:0);
  Alcotest.(check (float 1e-12)) "clock kept" 100.0 (World.now w)

let test_world_liveness () =
  let w = World.create ~cluster:(small_cluster ()) ~scenario:Scenario.quiet ~seed:4 in
  Alcotest.(check int) "all up" 6 (List.length (World.up_nodes w));
  World.set_down w ~node:2;
  Alcotest.(check bool) "down" false (World.is_up w ~node:2);
  Alcotest.(check int) "five up" 5 (List.length (World.up_nodes w));
  World.set_up w ~node:2;
  Alcotest.(check int) "back up" 6 (List.length (World.up_nodes w))

let test_world_attach_ticks () =
  let sim = Rm_engine.Sim.create () in
  let w = World.create ~cluster:(small_cluster ()) ~scenario:Scenario.normal ~seed:5 in
  World.attach w ~sim ~period:10.0 ~until:100.0;
  Rm_engine.Sim.run_until sim 100.0;
  Alcotest.(check bool) "world advanced" true (World.now w >= 90.0)

let test_world_busy_loaded () =
  let w = World.create ~cluster:(small_cluster ()) ~scenario:Scenario.busy ~seed:6 in
  World.advance w ~now:7200.0;
  let loads = List.init 6 (fun n -> World.cpu_load w ~node:n) in
  let mean = Rm_stats.Descriptive.mean_list loads in
  let wq = World.create ~cluster:(small_cluster ()) ~scenario:Scenario.quiet ~seed:6 in
  World.advance wq ~now:7200.0;
  let quiet_mean =
    Rm_stats.Descriptive.mean_list (List.init 6 (fun n -> World.cpu_load wq ~node:n))
  in
  Alcotest.(check bool) "busy >> quiet" true (mean > quiet_mean +. 0.5)

let suites =
  [
    ( "workload.ou",
      [
        Alcotest.test_case "clamps" `Quick test_ou_clamps;
        Alcotest.test_case "mean reversion" `Quick test_ou_reverts_to_mean;
        Alcotest.test_case "zero dt" `Quick test_ou_zero_dt_no_change;
        Alcotest.test_case "mean override" `Quick test_ou_mean_override;
        Alcotest.test_case "stationary sd" `Quick test_ou_stationary_sd;
      ] );
    ( "workload.spikes",
      [
        Alcotest.test_case "zero rate" `Quick test_spike_zero_rate;
        Alcotest.test_case "arrivals and expiry" `Quick test_spike_arrivals_and_expiry;
        Alcotest.test_case "monotonic time" `Quick test_spike_monotonic_time;
        Alcotest.test_case "long-horizon mean" `Quick test_spike_long_horizon_mean;
      ] );
    ( "workload.node_model",
      [
        Alcotest.test_case "ranges" `Quick test_node_model_ranges;
        Alcotest.test_case "util couples to load" `Quick
          test_node_model_util_couples_to_load;
      ] );
    ( "workload.flow_gen",
      [
        Alcotest.test_case "population" `Quick test_flow_gen_population;
        Alcotest.test_case "hotspot bias" `Quick test_flow_gen_hotspot_bias;
        Alcotest.test_case "turnover" `Quick test_flow_gen_turnover;
      ] );
    ( "workload.scenario",
      [
        Alcotest.test_case "lookup" `Quick test_scenario_lookup;
        Alcotest.test_case "hotspot family" `Quick test_scenario_hotspot_family;
        Alcotest.test_case "hotspot out of range" `Quick
          test_scenario_hotspot_out_of_range;
        Alcotest.test_case "presets distinct" `Quick test_scenario_presets_distinct;
      ] );
    ( "workload.world",
      [
        Alcotest.test_case "determinism" `Quick test_world_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_world_seed_changes_world;
        Alcotest.test_case "lenient advance" `Quick test_world_advance_lenient;
        Alcotest.test_case "liveness" `Quick test_world_liveness;
        Alcotest.test_case "attach ticks" `Quick test_world_attach_ticks;
        Alcotest.test_case "busy vs quiet" `Quick test_world_busy_loaded;
      ] );
  ]
